// Package pipeline decomposes a memory system organization into three
// composable translation stages executed by one shared access engine:
//
//   - a FrontEnd that routes each reference before the L1 (synonym filter
//     + synonym TLB, a conventional TLB, range/direct segments, ...),
//     deciding whether the cache hierarchy is accessed physically or
//     virtually (or not at all, after an unrecoverable fault);
//   - a cache stage — by default the full coherent hierarchy, replaceable
//     for designs like OVC whose L1 alone is virtual; and
//   - an optional Backend that finishes the access after the hierarchy
//     (post-LLC delayed translation, writeback translation).
//
// The paper's organizations are all compositions of these stages; each one
// supplies its Route/Finish hooks and inherits the shared fault, energy
// and statistics plumbing plus the scalar Access and batched AccessBatch
// entry points from the Engine.
package pipeline

import (
	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/energy"
	"hybridvc/internal/mem"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
)

// Request is one memory reference presented to a memory system.
type Request struct {
	// Core is the issuing core index.
	Core int
	// Kind is Read, Write, or Fetch.
	Kind cache.AccessKind
	// VA is the (guest) virtual address.
	VA addr.VA
	// Proc is the issuing process.
	Proc *osmodel.Process
}

// Result reports the outcome of a reference.
type Result struct {
	// Latency is the end-to-end memory access latency in cycles.
	Latency uint64
	// LLCMiss reports that the data came from DRAM.
	LLCMiss bool
	// HitLevel is the cache level that supplied the data, on the same
	// scale in every organization: 1 = L1, 2 = the private level behind
	// the L1 (L2, or OVC's physical L2 path), 3 = the shared LLC, and
	// 0 = memory. Accesses that never reach the hierarchy (unrecoverable
	// fault dead-ends) also report 0.
	HitLevel int
	// Fault reports that the OS had to intervene (demand paging, CoW).
	Fault bool
}

// FaultLatency is the cycles charged for an OS fault handler invocation
// (demand paging, CoW break, cold segment fill).
const FaultLatency = 3000

// MaxWalkRetries bounds how many times a timed page walk is re-issued
// after a transient (injected) walk failure before the walk gives up and
// reports the in-memory page-table state as-is.
const MaxWalkRetries = 3

// WalkRetryLatency is the cycles charged per transient walk retry: the
// walker detects the bad fetch (parity/poison) and re-issues the walk.
const WalkRetryLatency = 50

// WalkFaulter decides whether a timed page walk suffers a transient
// failure (a soft error on a PTE fetch). The fault injector implements it;
// with none installed the walk path pays only a nil-check.
type WalkFaulter interface {
	// FailWalk reports whether the next walk issued by core should fail
	// transiently. It is consulted once per walk attempt, so a walk that
	// retries asks again for each re-issue.
	FailWalk(core int) bool
}

// Base bundles the pieces every memory system shares and the physical
// access path they all use.
type Base struct {
	Hier *cache.Hierarchy
	DRAM *mem.DRAM
	Acc  *energy.Accumulator

	// Faults counts OS interventions.
	Faults stats.Counter
	// WalkSteps counts PTE fetches issued by timed page walks.
	WalkSteps stats.Counter

	// probe receives typed pipeline events; nil (the default) disables
	// observability at the cost of one nil-check per emission site.
	probe Probe

	// walkFaulter injects transient page-walk failures; nil (the default)
	// keeps the walk path allocation-free with a single nil-check.
	walkFaulter WalkFaulter
	// WalkRetries counts transient walk failures that were retried.
	WalkRetries stats.Counter

	// scratchMode routes hierarchy accesses through the allocation-free
	// scratch variants. The Engine sets it for the duration of an
	// AccessBatch; results are identical either way.
	scratchMode bool
}

// NewBase builds the shared substrate.
func NewBase(hcfg cache.HierarchyConfig, dcfg mem.DRAMConfig, model energy.Model) *Base {
	return &Base{
		Hier: cache.NewHierarchy(hcfg),
		DRAM: mem.NewDRAM(dcfg),
		Acc:  energy.NewAccumulator(model),
	}
}

// BaseState returns the shared substrate itself. Organizations embed
// *Base (through the Engine), so the promoted method lets generic tooling
// (the parity experiment, benchmarks) reach the shared counters without a
// per-organization type switch.
func (b *Base) BaseState() *Base { return b }

// ScratchMode reports whether the engine is inside a batched access, so
// stages can pick allocation-free variants of their structures (e.g. the
// segment translator's reusable walk path).
func (b *Base) ScratchMode() bool { return b.scratchMode }

// Probe returns the attached probe, or nil when observability is off.
// Stages guard every emission with this nil-check, which is the entire
// cost of the probe layer when disabled.
func (b *Base) Probe() Probe { return b.probe }

// SetProbe attaches (or, with nil, detaches) the event probe. The probe
// is shared by every stage running over this substrate — organizations
// composing several engines on one Base (direct segments) observe one
// coherent event stream.
func (b *Base) SetProbe(p Probe) { b.probe = p }

// SetWalkFaulter attaches (or, with nil, detaches) a transient walk-fault
// source. Organizations whose walks run through Base.TimedWalk see the
// injected failures; designs with private walkers (OVC, virtualized 2D
// walks) simply never consult it.
func (b *Base) SetWalkFaulter(f WalkFaulter) { b.walkFaulter = f }

// hierAccess routes one hierarchy access through the plain or scratch
// variant by mode. Scratch results alias a hierarchy-owned writeback
// buffer that the next access overwrites.
func (b *Base) hierAccess(core int, kind cache.AccessKind, n addr.Name, perm addr.Perm) cache.AccessResult {
	if b.scratchMode {
		return b.Hier.AccessScratch(core, kind, n, perm)
	}
	return b.Hier.Access(core, kind, n, perm)
}

// PhysAccess performs a physically addressed access (synonym data, PTE
// fetches, baseline data) through the hierarchy and DRAM, returning the
// latency and whether the LLC missed.
func (b *Base) PhysAccess(core int, kind cache.AccessKind, pa addr.PA, perm addr.Perm) (uint64, cache.AccessResult) {
	res := b.hierAccess(core, kind, addr.PhysName(pa), perm)
	lat := res.Latency
	if res.LLCMiss {
		lat += b.DRAM.Access(pa)
	}
	// Physical writebacks need no translation; ignore res.Writebacks here.
	return lat, res
}

// TimedWalk performs a hardware page walk for (proc, va), fetching each
// PTE through the cache hierarchy (so large caches absorb walk traffic).
// It returns the leaf, the total latency, and whether the walk succeeded.
//
// When a WalkFaulter is attached, a walk attempt may fail transiently (a
// soft error on a PTE fetch): the walker detects the bad fetch, charges
// WalkRetryLatency, and re-issues the walk up to MaxWalkRetries times.
// The page-table state itself is untouched, so a retried walk returns the
// same leaf a clean walk would have — injected walk faults perturb timing
// and walk traffic, never translation results.
func (b *Base) TimedWalk(core int, proc *osmodel.Process, va addr.VA) (pte WalkLeaf, latency uint64, ok bool) {
	for attempt := 0; ; attempt++ {
		b.Acc.Access(energy.PageWalk, 1)
		path, leaf, found := proc.PT.WalkPath(va)
		for _, slot := range path {
			b.WalkSteps.Inc()
			lat, _ := b.PhysAccess(core, cache.Read, slot, addr.PermRO)
			latency += lat
		}
		transient := b.walkFaulter != nil && attempt < MaxWalkRetries && b.walkFaulter.FailWalk(core)
		if p := b.probe; p != nil {
			p.Walk(WalkEvent{Core: core, Steps: len(path), OK: found && !transient})
		}
		if transient {
			b.WalkRetries.Inc()
			latency += WalkRetryLatency
			continue
		}
		if !found {
			return WalkLeaf{}, latency, false
		}
		return WalkLeaf{
			Frame:  leaf.Frame,
			Perm:   leaf.Perm,
			Shared: leaf.Shared,
			Huge:   leaf.Huge,
		}, latency, true
	}
}

// WalkLeaf is the result of a page walk.
type WalkLeaf struct {
	Frame  uint64
	Perm   addr.Perm
	Shared bool
	// Huge marks a 2 MiB leaf; Frame is then the 2 MiB-aligned frame.
	Huge bool
}

// PA composes the leaf with the in-page offset.
func (l WalkLeaf) PA(va addr.VA) addr.PA {
	if l.Huge {
		return addr.FrameToPA(l.Frame) + addr.PA(uint64(va)&(addr.HugePageSize-1))
	}
	return addr.FrameToPA(l.Frame) + addr.PA(va.PageOffset())
}

// FrameFor4K returns the 4 KiB frame backing va — for huge leaves this
// "fractures" the mapping into the page-granular TLB entries real CPUs
// install when a structure only supports 4 KiB translations.
func (l WalkLeaf) FrameFor4K(va addr.VA) uint64 {
	if !l.Huge {
		return l.Frame
	}
	return l.Frame + (uint64(va)>>addr.PageBits)&(addr.HugePageSize/addr.PageSize-1)
}

// HandleFault invokes the OS fault handler and charges its latency.
func (b *Base) HandleFault(proc *osmodel.Process, va addr.VA, isWrite bool) (uint64, bool) {
	b.Faults.Inc()
	ok := proc.HandleFault(va, isWrite)
	if p := b.probe; p != nil {
		p.Fault(FaultEvent{Write: isWrite, Fixed: ok})
	}
	return FaultLatency, ok
}
