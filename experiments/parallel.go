package experiments

import (
	"fmt"

	"hybridvc/internal/core"
	"hybridvc/internal/cpu"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// AblationSerialParallel (A4) quantifies Section IV-C's design choice:
// delayed translation can run in parallel with the LLC access (hiding its
// latency) or serially after the miss (saving the energy of translations
// that an LLC hit would have made unnecessary). The paper chooses serial;
// this table shows the latency/energy trade both ways.
func AblationSerialParallel(scale Scale) *stats.Table {
	n := scale.pick(40_000, 500_000)
	t := stats.NewTable("Ablation A4: serial vs parallel delayed translation",
		"workload", "mode", "cycles", "delayed xlations", "dynamic energy (pJ)")
	for _, wl := range []string{"omnetpp", "gups"} {
		for _, parallel := range []bool{false, true} {
			k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
			cfg := core.DefaultHybridConfig(1)
			cfg.ParallelDelayed = parallel
			ms := core.NewHybridMMU(cfg, k)
			gens, err := workload.NewGroup(workload.Specs[wl], k, 1)
			if err != nil {
				panic(fmt.Sprintf("a4 %s: %v", wl, err))
			}
			s := sim.New(sim.Config{CPU: cpu.DefaultConfig(), FetchEvery: 8, Timeslice: 50_000, Interleave: 128}, ms, gens)
			rep := s.Run(n)
			mode := "serial (paper)"
			if parallel {
				mode = "parallel"
			}
			t.AddRow(wl, mode,
				fmt.Sprintf("%d", rep.Cycles),
				fmt.Sprintf("%d", ms.DelayedTranslations.Value()),
				fmt.Sprintf("%.0f", rep.DynamicEnergyPJ))
		}
	}
	return t
}
