package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// testKeys returns n synthetic cache keys shaped like the real ones
// (hex SHA-256 strings), deterministically.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestOwnerDeterministic pins that a fixed member set yields one owner
// per key, stable across calls.
func TestOwnerDeterministic(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	for _, key := range testKeys(64) {
		a := Owner(key, ids)
		if a == "" {
			t.Fatalf("Owner(%q) empty", key)
		}
		for i := 0; i < 3; i++ {
			if b := Owner(key, ids); b != a {
				t.Fatalf("Owner(%q) flapped: %q then %q", key, a, b)
			}
		}
	}
	if Owner("anything", nil) != "" {
		t.Error("Owner with no members should be empty")
	}
}

// TestOwnerAgreesAcrossPeerListOrder is the cross-node agreement
// property: every node computes the same owner regardless of the order
// its peer list was written in.
func TestOwnerAgreesAcrossPeerListOrder(t *testing.T) {
	ids := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	rng := rand.New(rand.NewSource(7))
	for _, key := range testKeys(128) {
		want := Owner(key, ids)
		for trial := 0; trial < 5; trial++ {
			shuffled := append([]string(nil), ids...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := Owner(key, shuffled); got != want {
				t.Fatalf("key %.12s…: owner %q with order %v, want %q", key, got, shuffled, want)
			}
		}
	}
}

// TestOwnerDistribution sanity-checks the rendezvous spread: with 4
// nodes and many keys, no node should own a wildly disproportionate
// share (each expects ~25%).
func TestOwnerDistribution(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, key := range keys {
		counts[Owner(key, ids)]++
	}
	for _, id := range ids {
		share := float64(counts[id]) / float64(len(keys))
		if share < 0.15 || share > 0.35 {
			t.Errorf("node %s owns %.1f%% of keys, want ~25%% (counts %v)", id, 100*share, counts)
		}
	}
}

// TestMinimalRemappingOnMembershipChange is the property that makes
// rendezvous hashing worth its name: adding a node only moves keys TO
// the new node (nothing shuffles between survivors), removing a node
// only moves that node's keys, and the moved share is ~1/N.
func TestMinimalRemappingOnMembershipChange(t *testing.T) {
	base := []string{"n1", "n2", "n3", "n4"}
	keys := testKeys(2000)

	// Join: n5 arrives. Keys either keep their owner or move to n5.
	joined := append(append([]string(nil), base...), "n5")
	moved := 0
	for _, key := range keys {
		before, after := Owner(key, base), Owner(key, joined)
		if before != after {
			if after != "n5" {
				t.Fatalf("key %.12s… moved %q → %q on join of n5 (must only move to the joiner)", key, before, after)
			}
			moved++
		}
	}
	// Expected share 1/5 = 20%; allow generous slack for hash variance.
	if share := float64(moved) / float64(len(keys)); share < 0.10 || share > 0.30 {
		t.Errorf("join remapped %.1f%% of keys, want ~20%%", 100*share)
	}

	// Leave: n2 departs. Only n2's keys move; everyone else's stay put.
	left := []string{"n1", "n3", "n4"}
	moved = 0
	for _, key := range keys {
		before, after := Owner(key, base), Owner(key, left)
		if before == "n2" {
			if after == "n2" {
				t.Fatalf("key %.12s… still owned by departed n2", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %.12s… moved %q → %q on leave of n2 (must not move)", key, before, after)
		}
	}
	if share := float64(moved) / float64(len(keys)); share < 0.15 || share > 0.35 {
		t.Errorf("leave remapped %.1f%% of keys, want ~25%%", 100*share)
	}
}

// TestMinimalRemappingProperty re-checks the join property with
// randomized member sets and keys via testing/quick.
func TestMinimalRemappingProperty(t *testing.T) {
	prop := func(seed int64, nNodes uint8, key string) bool {
		n := 2 + int(nNodes%6) // 2..7 nodes
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("node-%d-%d", seed, i)
		}
		joiner := fmt.Sprintf("node-%d-join", seed)
		before := Owner(key, ids)
		after := Owner(key, append(append([]string(nil), ids...), joiner))
		return after == before || after == joiner
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRankedOrder pins Ranked's contract: first element is the owner,
// and the ordering is a permutation of the members.
func TestRankedOrder(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	for _, key := range testKeys(32) {
		r := Ranked(key, ids)
		if len(r) != len(ids) {
			t.Fatalf("Ranked returned %d ids, want %d", len(r), len(ids))
		}
		if r[0] != Owner(key, ids) {
			t.Fatalf("Ranked[0] = %q, Owner = %q", r[0], Owner(key, ids))
		}
		seen := map[string]bool{}
		for _, id := range r {
			seen[id] = true
		}
		if len(seen) != len(ids) {
			t.Fatalf("Ranked not a permutation: %v", r)
		}
	}
}
