package segment

import "fmt"

// Incremental index tree maintenance. Build constructs a perfectly packed
// tree, but a real OS inserts and deletes segments in place: node
// addresses stay stable (so the index cache keeps its contents, unlike a
// rebuild) and nodes run at a ~2/3 fill factor after splits — which makes
// the tree larger than a packed one, the effect behind the paper's 75.5%
// worst-case figure for 2048 segments in a 32 KiB index cache.

// Insert adds one entry in place, splitting full nodes top-down as B-trees
// do. It returns an error on a duplicate key. An empty tree gets a root.
func (t *IndexTree) Insert(e TreeEntry) error {
	if t.root == nil {
		n := &node{leaf: true, keys: []Key{e.Key}, values: []ID{e.Value}}
		pa, err := t.arena.newNodePA()
		if err != nil {
			return err
		}
		n.pa = pa
		t.root = n
		t.depth = 1
		t.count = 1
		return nil
	}
	// Split a full root first so descent always has room to push into.
	if len(t.root.keys) == NodeKeys {
		left := t.root
		right, sep, err := t.split(left)
		if err != nil {
			return err
		}
		newRoot := &node{keys: []Key{sep}, children: []*node{left, right}}
		pa, err := t.arena.newNodePA()
		if err != nil {
			return err
		}
		newRoot.pa = pa
		t.root = newRoot
		t.depth++
	}
	if err := t.insertNonFull(t.root, e); err != nil {
		return err
	}
	t.count++
	return nil
}

// insertNonFull inserts into the subtree at n, which is not full.
func (t *IndexTree) insertNonFull(n *node, e TreeEntry) error {
	if n.leaf {
		i := 0
		for i < len(n.keys) && n.keys[i] < e.Key {
			i++
		}
		if i < len(n.keys) && n.keys[i] == e.Key {
			return fmt.Errorf("segment: duplicate tree key %#x", uint64(e.Key))
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = e.Key
		n.values = append(n.values, NoID)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = e.Value
		return nil
	}
	// Route: rightmost child whose separator <= key.
	i := 0
	for i < len(n.keys) && n.keys[i] <= e.Key {
		i++
	}
	child := n.children[i]
	if len(child.keys) == NodeKeys {
		right, sep, err := t.split(child)
		if err != nil {
			return err
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if e.Key >= sep {
			child = right
		}
	}
	return t.insertNonFull(child, e)
}

// split divides a full node in half, materializes the new right node, and
// returns it with its separator (the right subtree's minimum key).
func (t *IndexTree) split(n *node) (*node, Key, error) {
	mid := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	pa, err := t.arena.newNodePA()
	if err != nil {
		return nil, 0, err
	}
	right.pa = pa
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.values = append(right.values, n.values[mid:]...)
		n.keys = n.keys[:mid]
		n.values = n.values[:mid]
		// Splice into the leaf chain.
		right.next = n.next
		if n.next != nil {
			n.next.prev = right
		}
		right.prev = n
		n.next = right
		return right, right.keys[0], nil
	}
	// Internal split: the separator at mid moves up; children mid+1..
	// move right.
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, sep, nil
}

// Delete removes the entry with the exact key, returning whether it
// existed. Deletion is lazy — nodes may underflow, which keeps lookups
// correct but wastes space; the OS compacts with a rebuild when churn
// accumulates (mirroring its Bloom-filter rebuild policy).
func (t *IndexTree) Delete(key Key) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf {
		i := 0
		for i < len(n.keys) && n.keys[i] <= key {
			i++
		}
		n = n.children[i]
	}
	for i, k := range n.keys {
		if k == key {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.values = append(n.values[:i], n.values[i+1:]...)
			t.count--
			return true
		}
	}
	return false
}

// FillFactor returns the mean occupancy of the tree's nodes (keys held /
// key capacity); 0 for an empty tree.
func (t *IndexTree) FillFactor() float64 {
	if t.root == nil {
		return 0
	}
	var used, capacity int
	var walk func(*node)
	walk = func(n *node) {
		used += len(n.keys)
		capacity += NodeKeys
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return float64(used) / float64(capacity)
}
