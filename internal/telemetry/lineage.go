package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"regexp"
	"sync/atomic"
)

// A lineage ID identifies one submission end to end: minted when the
// request arrives (or adopted from the client's X-Request-Id), carried
// on the Job, returned in every response and response header, stamped on
// every structured log line, and chained through dedup/coalesce and
// cache-hit paths so a served result can always be traced back to the
// request that originally produced it.

var lineageSeq atomic.Uint64

// NewLineageID mints a fresh lineage ID: "lin-" + 16 hex chars of
// crypto randomness (falling back to a process-local sequence if the
// entropy source fails — tracing must never block a submission).
func NewLineageID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("lin-%016x", lineageSeq.Add(1))
	}
	return "lin-" + hex.EncodeToString(b[:])
}

// requestIDRe bounds what we adopt from a client-supplied X-Request-Id:
// log- and header-safe characters, at most 64 of them. Anything else is
// replaced by a minted ID rather than rejected — tracing is best-effort.
var requestIDRe = regexp.MustCompile(`^[A-Za-z0-9._:/-]{1,64}$`)

// LineageFrom adopts an acceptable client-supplied request ID as the
// lineage ID, or mints a fresh one.
func LineageFrom(requestID string) string {
	if requestIDRe.MatchString(requestID) {
		return requestID
	}
	return NewLineageID()
}
