package experiments

import (
	"fmt"

	"hybridvc/internal/baseline"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// TableIIIRow is one row of Table III: the maximum live segment count
// under eager allocation, the MPKI of RMM's 32-entry range TLB, and the
// utilization of the eagerly allocated memory.
type TableIIIRow struct {
	Workload    string
	Segments    int
	RMMMPKI     float64
	Utilization float64
}

var tableIIIWorkloads = []string{
	"astar", "mcf", "omnetpp", "cactus", "gemsFDTD", "xalancbmk",
	"canneal", "stream", "mummer", "tigr", "memcached", "npb-cg", "gups",
}

// TableIII reproduces Table III. Segment counts come from the OS model's
// eager allocation; RMM MPKI from replaying the access stream against a
// 32-entry range TLB; utilization from full-run touch accounting. One
// runner cell per workload.
func TableIII(scale Scale) ([]TableIIIRow, *stats.Table, error) {
	n := scale.pick(120_000, 2_000_000)
	var cells []Cell
	for _, name := range tableIIIWorkloads {
		name := name
		cells = append(cells, Cell{
			Label: "table3/" + name,
			Fn: func() (any, error) {
				k := osmodel.NewKernel(osmodel.Config{PhysBytes: 32 << 30})
				rmm := baseline.NewRMM(baseline.DefaultConfig(1), k)
				gens, err := workload.NewGroup(workload.Specs[name], k, 1)
				if err != nil {
					return nil, fmt.Errorf("table3 %s: %w", name, err)
				}
				driveMem(rmm, gens, n)
				var insns uint64
				for _, g := range gens {
					insns += g.Emitted()
					g.PrewarmTouch() // model the full run for utilization
				}
				misses := rmm.Range(0).Misses()
				var util stats.Mean
				for _, g := range gens {
					util.Observe(g.Proc.Utilization())
				}
				return TableIIIRow{
					Workload:    name,
					Segments:    k.MaxSegments(),
					RMMMPKI:     stats.PerKilo(misses, insns),
					Utilization: util.Value(),
				}, nil
			},
		})
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var rows []TableIIIRow
	for _, r := range res {
		rows = append(rows, r.Value.(TableIIIRow))
	}
	t := stats.NewTable("Table III: maximum segments in use, RMM (32-range) MPKI, memory utilization",
		"workload", "segments", "RMM MPKI", "usage (%)")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%d", r.Segments),
			fmt.Sprintf("%.3f", r.RMMMPKI),
			fmt.Sprintf("%.1f", 100*r.Utilization))
	}
	return rows, t, nil
}
