// Package mem models physical memory: a contiguous-extent frame allocator
// (segment translation requires variable-length contiguous physical
// regions), a sparse byte-addressable backing store for pages that hold real
// contents (page tables, the segment index tree), and a DRAM-lite timing
// model with banks and open-row tracking.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hybridvc/internal/addr"
)

// extent is a run of free frames [start, start+count).
type extent struct {
	start uint64 // frame number
	count uint64
}

// Allocator hands out physical frames. It is an extent (first-fit) allocator
// with coalescing so the OS model can eagerly allocate variable-length
// contiguous segments, as the paper's segment translation requires.
type Allocator struct {
	totalFrames uint64
	free        []extent // sorted by start, non-adjacent
	allocated   uint64
}

// NewAllocator creates an allocator over size bytes of physical memory.
// It panics unless size is a positive multiple of the page size.
func NewAllocator(size uint64) *Allocator {
	if size == 0 || size%addr.PageSize != 0 {
		panic(fmt.Sprintf("mem: physical size %d not a positive page multiple", size))
	}
	frames := size / addr.PageSize
	return &Allocator{
		totalFrames: frames,
		free:        []extent{{start: 0, count: frames}},
	}
}

// TotalFrames returns the number of frames managed.
func (a *Allocator) TotalFrames() uint64 { return a.totalFrames }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() uint64 { return a.totalFrames - a.allocated }

// AllocatedFrames returns the number of currently allocated frames.
func (a *Allocator) AllocatedFrames() uint64 { return a.allocated }

// AllocContiguous allocates nframes contiguous frames first-fit and returns
// the physical address of the first frame. The boolean is false when no
// free extent is large enough (external fragmentation or exhaustion).
func (a *Allocator) AllocContiguous(nframes uint64) (addr.PA, bool) {
	if nframes == 0 {
		return 0, false
	}
	for i := range a.free {
		if a.free[i].count >= nframes {
			start := a.free[i].start
			a.free[i].start += nframes
			a.free[i].count -= nframes
			if a.free[i].count == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.allocated += nframes
			return addr.FrameToPA(start), true
		}
	}
	return 0, false
}

// AllocFrame allocates a single frame.
func (a *Allocator) AllocFrame() (addr.PA, bool) {
	return a.AllocContiguous(1)
}

// AllocContiguousAligned allocates nframes contiguous frames whose start
// is a multiple of alignFrames (e.g. 512 for 2 MiB-aligned huge pages).
// Unaligned head space of the chosen extent remains free.
func (a *Allocator) AllocContiguousAligned(nframes, alignFrames uint64) (addr.PA, bool) {
	if nframes == 0 || alignFrames == 0 {
		return 0, false
	}
	for i := range a.free {
		e := a.free[i]
		start := (e.start + alignFrames - 1) / alignFrames * alignFrames
		if start+nframes > e.start+e.count {
			continue
		}
		// Carve [start, start+nframes) out of the extent, leaving the
		// head and tail pieces free.
		tailStart := start + nframes
		tailCount := e.start + e.count - tailStart
		headCount := start - e.start
		switch {
		case headCount == 0 && tailCount == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case headCount == 0:
			a.free[i] = extent{start: tailStart, count: tailCount}
		case tailCount == 0:
			a.free[i] = extent{start: e.start, count: headCount}
		default:
			a.free[i] = extent{start: e.start, count: headCount}
			a.free = append(a.free, extent{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = extent{start: tailStart, count: tailCount}
		}
		a.allocated += nframes
		return addr.FrameToPA(start), true
	}
	return 0, false
}

// Free returns nframes frames starting at pa to the free pool, coalescing
// with neighbours. It panics on double-free or unaligned addresses: the OS
// model owns all allocation, so these indicate simulator bugs.
func (a *Allocator) Free(pa addr.PA, nframes uint64) {
	if uint64(pa)%addr.PageSize != 0 {
		panic(fmt.Sprintf("mem: Free of unaligned address %#x", uint64(pa)))
	}
	start := pa.Frame()
	if start+nframes > a.totalFrames {
		panic(fmt.Sprintf("mem: Free beyond physical memory: frame %d + %d", start, nframes))
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].start > start })
	// Check overlap with predecessor and successor.
	if i > 0 {
		prev := a.free[i-1]
		if prev.start+prev.count > start {
			panic(fmt.Sprintf("mem: double free at frame %d", start))
		}
	}
	if i < len(a.free) && start+nframes > a.free[i].start {
		panic(fmt.Sprintf("mem: double free at frame %d", start))
	}
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = extent{start: start, count: nframes}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].start+a.free[i].count == a.free[i+1].start {
		a.free[i].count += a.free[i+1].count
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].start+a.free[i-1].count == a.free[i].start {
		a.free[i-1].count += a.free[i].count
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.allocated -= nframes
}

// LargestFreeExtent returns the size in frames of the largest free run.
func (a *Allocator) LargestFreeExtent() uint64 {
	var max uint64
	for _, e := range a.free {
		if e.count > max {
			max = e.count
		}
	}
	return max
}

// NumFreeExtents returns how many disjoint free runs exist — a direct
// measure of external fragmentation.
func (a *Allocator) NumFreeExtents() int { return len(a.free) }

// Store is the sparse backing store for physical pages that carry real
// contents in the simulation (page-table pages and index-tree pages).
// Ordinary data pages never allocate backing bytes.
// memoSlots is the size of the Store's direct-mapped lookup memo. A
// multi-level walk alternates between a handful of table pages, so a
// single-entry memo thrashes; eight slots cover the working set of one
// walk with room to spare.
const memoSlots = 8

type Store struct {
	pages map[uint64]*[addr.PageSize]byte
	// memoFrame/memoPage form a small direct-mapped memo over the map:
	// slot f%memoSlots caches the page pointer for frame f (stored
	// biased by one so the zero value means empty, frame 0 included).
	// Walks read several words from a few table pages back to back, and
	// the memo turns the repeat map probes into a compare. Pages are
	// never removed from the map (ZeroPage clears in place), so cached
	// pointers stay good.
	memoFrame [memoSlots]uint64
	memoPage  [memoSlots]*[addr.PageSize]byte
}

// NewStore creates an empty backing store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*[addr.PageSize]byte)}
}

func (s *Store) page(pa addr.PA) *[addr.PageSize]byte {
	f := pa.Frame()
	slot := f % memoSlots
	if s.memoFrame[slot] == f+1 {
		return s.memoPage[slot]
	}
	p, ok := s.pages[f]
	if !ok {
		p = new([addr.PageSize]byte)
		s.pages[f] = p
	}
	s.memoFrame[slot], s.memoPage[slot] = f+1, p
	return p
}

// Read64 reads the 8-byte word at pa (must be 8-byte aligned).
func (s *Store) Read64(pa addr.PA) uint64 {
	if uint64(pa)%8 != 0 {
		panic(fmt.Sprintf("mem: unaligned Read64 at %#x", uint64(pa)))
	}
	f := pa.Frame()
	slot := f % memoSlots
	p := s.memoPage[slot]
	if s.memoFrame[slot] != f+1 {
		var ok bool
		p, ok = s.pages[f]
		if !ok {
			// Unbacked pages read as zero and are not memoized: a later
			// Write64 may allocate backing for this frame.
			return 0
		}
		s.memoFrame[slot], s.memoPage[slot] = f+1, p
	}
	off := pa.PageOffset()
	return binary.LittleEndian.Uint64(p[off : off+8])
}

// Write64 writes the 8-byte word at pa (must be 8-byte aligned).
func (s *Store) Write64(pa addr.PA, v uint64) {
	if uint64(pa)%8 != 0 {
		panic(fmt.Sprintf("mem: unaligned Write64 at %#x", uint64(pa)))
	}
	p := s.page(pa)
	off := pa.PageOffset()
	binary.LittleEndian.PutUint64(p[off:off+8], v)
}

// ZeroPage clears the page containing pa.
func (s *Store) ZeroPage(pa addr.PA) {
	if p, ok := s.pages[pa.Frame()]; ok {
		*p = [addr.PageSize]byte{}
	}
}

// PagesBacked returns how many pages currently hold backing bytes.
func (s *Store) PagesBacked() int { return len(s.pages) }

// DRAMConfig parameterizes the DRAM timing model. Latencies are in core
// cycles (the paper's core runs at 3.4 GHz over DDR3-1600).
type DRAMConfig struct {
	// Banks is the number of independent banks (row buffers).
	Banks int
	// RowBytes is the row buffer size in bytes.
	RowBytes uint64
	// RowHitCycles is the access latency when the row is already open.
	RowHitCycles uint64
	// RowMissCycles is the latency when a different row must be opened.
	RowMissCycles uint64
}

// DefaultDRAMConfig returns DDR3-1600-like timings at 3.4 GHz
// (~18 ns row hit, ~48 ns row miss).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Banks: 8, RowBytes: 8192, RowHitCycles: 60, RowMissCycles: 165}
}

// DRAM is the bank/row-buffer timing model.
type DRAM struct {
	cfg      DRAMConfig
	openRow  []uint64 // per bank; ^0 when closed
	Accesses uint64
	RowHits  uint64
}

// NewDRAM creates a DRAM model; it panics on non-positive bank counts or
// row sizes since the configuration is fixed by the experiment.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 {
		panic("mem: invalid DRAM config")
	}
	open := make([]uint64, cfg.Banks)
	for i := range open {
		open[i] = ^uint64(0)
	}
	return &DRAM{cfg: cfg, openRow: open}
}

// Access models one line fill from pa and returns its latency in cycles.
func (d *DRAM) Access(pa addr.PA) uint64 {
	row := uint64(pa) / d.cfg.RowBytes
	bank := row % uint64(d.cfg.Banks)
	d.Accesses++
	if d.openRow[bank] == row {
		d.RowHits++
		return d.cfg.RowHitCycles
	}
	d.openRow[bank] = row
	return d.cfg.RowMissCycles
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
