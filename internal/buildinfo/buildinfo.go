// Package buildinfo exposes one version string shared by every command
// in the module, populated from the Go build metadata stamped into the
// binary (module version, VCS revision and dirty flag). Commands add a
// uniform `-version` flag via Flag and print through Print, so the six
// binaries cannot drift in how they report what they were built from.
package buildinfo

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
)

// read is swapped by tests to exercise the formatting without a real
// build-info section.
var read = debug.ReadBuildInfo

// Version renders the build identity: the module version when stamped
// (release builds), otherwise the VCS revision (short) with a "-dirty"
// suffix for modified trees, otherwise "(devel)". The Go toolchain
// version is always appended.
func Version() string {
	bi, ok := read()
	if !ok {
		return fmt.Sprintf("unknown (%s)", runtime.Version())
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		if rev, dirty := vcs(bi); rev != "" {
			v = rev
			if dirty {
				v += "-dirty"
			}
		} else {
			v = "(devel)"
		}
	}
	return fmt.Sprintf("%s (%s)", v, runtime.Version())
}

// vcs extracts the short VCS revision and dirty flag from the build
// settings, when the binary was built inside a checkout.
func vcs(bi *debug.BuildInfo) (rev string, dirty bool) {
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// Print writes "<cmd> <version>" to w.
func Print(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s\n", cmd, Version())
}

// Flag registers a `-version` flag on the default flag set. Call it
// before flag.Parse, then HandleFlag after: when the flag was given the
// command prints its version to stdout and exits 0 before doing any
// work.
func Flag() *bool {
	return flag.Bool("version", false, "print the build version and exit")
}

// HandleFlag prints the version and exits when requested was set.
func HandleFlag(requested *bool, cmd string) {
	if requested != nil && *requested {
		Print(os.Stdout, cmd)
		os.Exit(0)
	}
}
