package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hybridvc/internal/stats"
)

// cacheEntry is one content-addressed result: the byte-exact report (sim
// jobs) or rendered tables (sweep jobs), plus the recorded timeline so a
// cache-served job can still stream its intervals.
type cacheEntry struct {
	reportJSON []byte
	tables     []string
	intervals  []stats.Interval
	// lineage is the lineage ID of the job that produced the result, so
	// cache-served jobs can report their provenance chain.
	lineage string
	// originNode is the cluster node that originally simulated the
	// result (empty for locally produced results outside a cluster).
	originNode string
}

// resultCache is a bounded LRU keyed by the canonical job hash. It is
// the daemon's work amortizer: design-space exploration re-queries the
// same configurations constantly, and a hit serves bytes from memory
// instead of burning a worker on an identical simulation.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // key → element whose Value is *lruItem
	order   *list.List               // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newResultCache builds a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached entry, promoting it to most recently used.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// peek returns the cached entry without touching the hit/miss counters
// or the recency order. The submit path's post-peer-fetch recheck and
// the peer GET handler use it: neither is a client-facing cache lookup,
// so neither should skew the cache metrics.
func (c *resultCache) peek(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruItem).entry, true
}

// put stores an entry, evicting the least recently used beyond the bound.
func (c *resultCache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem).key)
	}
}

// len returns the resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
