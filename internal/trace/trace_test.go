package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"hybridvc/internal/osmodel"
	"hybridvc/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, err := workload.New(workload.Specs["mcf"], k, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a stream, then replay and compare against a twin generator.
	var buf bytes.Buffer
	if err := Capture(&buf, g, 5000); err != nil {
		t.Fatal(err)
	}

	k2 := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	twin, _ := workload.New(workload.Specs["mcf"], k2, 11)
	r := NewReader(&buf)
	for i := 0; i < 5000; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := twin.Next(); got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if r.Count() != 5000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestCompactEncoding(t *testing.T) {
	// Sequential streams must compress to a few bytes per record.
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, _ := workload.New(workload.Specs["stream"], k, 3)
	var buf bytes.Buffer
	if err := Capture(&buf, g, 10000); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 3.0 {
		t.Errorf("stream trace uses %.1f bytes/record, want <= 3", perRecord)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOTATRACE"))
	if _, err := r.Next(); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, _ := workload.New(workload.Specs["gups"], k, 5)
	var buf bytes.Buffer
	if err := Capture(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	// Chop the last bytes: reading to the end must yield a non-EOF error
	// or a clean EOF at a record boundary, never a silent wrong record.
	data := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(data))
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == io.EOF && r.Count() == 100 {
		t.Error("truncated trace replayed completely")
	}
}

func TestEmptyTraceEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(workload.Insn{})
	w.Write(workload.Insn{IsMem: true, VA: 0x1000})
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}
