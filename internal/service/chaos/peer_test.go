// Cluster peer-fault scenarios (part of make chaos): a two-node
// cluster where the fetching node reaches its peer through a
// fault-injecting proxy — owner down, owner wedged, owner lying — plus
// a real owner kill mid-workload. The contract under test: a degraded
// owner costs a local simulation, never a failed job and never a
// corrupt result served; and once the owner heals, peer serving
// resumes. Run race-enabled.
package chaos_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/chaos"
	"hybridvc/internal/service/client"
	"hybridvc/internal/service/cluster"
)

// peerPair is the two-node chaos topology: node A fetches from owner B
// through the fault proxy; B sees A directly.
type peerPair struct {
	a, b   *service.Server
	ca, cb *client.Client
	proxy  *chaos.PeerProxy
	stopB  func()
}

// startPeerPair boots owner node B behind a PeerProxy and fetching node
// A whose member list routes B's ID at the proxy. The fetch timeout is
// tight (150ms) so stall scenarios resolve fast.
func startPeerPair(t *testing.T, seed int64) *peerPair {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	proxy := chaos.NewPeerProxy(urlB, seed)
	t.Cleanup(proxy.Close)

	const token = "chaos-peer-token"
	newNode := func(id string, members []cluster.Member, ln net.Listener) (*service.Server, *client.Client, func()) {
		clus, err := cluster.New(cluster.Config{
			NodeID: id, Members: members, Token: token,
			FetchTimeout:  150 * time.Millisecond,
			ProbeInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := service.New(service.Config{
			Workers: 1, SpoolDir: t.TempDir(), NodeID: id, Cluster: clus,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", id, err)
			}
			ts.Close()
		}
		t.Cleanup(stop)
		return srv, client.New(ts.URL, nil), stop
	}

	// A believes B lives at the proxy; B believes in the direct URLs (it
	// never fetches in these scenarios, it only serves and probes).
	a, ca, _ := newNode("a", []cluster.Member{
		{ID: "a", URL: urlA}, {ID: "b", URL: proxy.URL()},
	}, lnA)
	b, cb, stopB := newNode("b", []cluster.Member{
		{ID: "a", URL: urlA}, {ID: "b", URL: urlB},
	}, lnB)
	return &peerPair{a: a, b: b, ca: ca, cb: cb, proxy: proxy, stopB: stopB}
}

// specOwnedBy scans seeds for the n-th spec whose key lands on the
// wanted owner under the pair's two-member ring.
func specOwnedBy(t *testing.T, p *peerPair, owner string, skip int) service.JobSpec {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		spec := service.JobSpec{Instructions: 30_000, Seed: seed}
		norm := spec
		if err := norm.Normalize(); err != nil {
			t.Fatal(err)
		}
		if p.a.Cluster().OwnerOf(norm.CacheKey()).ID == owner {
			if skip == 0 {
				return spec
			}
			skip--
		}
	}
	t.Fatalf("no spec owned by %q in 10k seeds", owner)
	return service.JobSpec{}
}

// waitHealthy blocks until node A's probe loop believes peer B has the
// wanted health, or fails the test.
func waitHealthy(t *testing.T, p *peerPair, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.a.Cluster().Healthy("b") != want {
		if time.Now().After(deadline) {
			t.Fatalf("peer b never became healthy=%v", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func clusterMetrics(t *testing.T, srv *service.Server) service.ClusterMetrics {
	t.Helper()
	m := srv.MetricsSnapshot()
	if m.Cluster == nil {
		t.Fatal("no cluster metrics block")
	}
	return *m.Cluster
}

// TestChaosPeerOwnerDown: with the owner unreachable, submissions of
// owner-keyed specs fall back to local simulation — no failed jobs —
// the peer is marked unhealthy so later submissions skip the network
// entirely, and healing the owner restores peer serving.
func TestChaosPeerOwnerDown(t *testing.T) {
	p := startPeerPair(t, 1)
	ctx := context.Background()

	p.proxy.SetMode(chaos.PeerDown)
	spec1 := specOwnedBy(t, p, "b", 0)
	resp, err := p.ca.Submit(ctx, spec1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Deduped {
		t.Fatalf("dead-owner submission should run fresh locally: %+v", resp)
	}
	st := watchDone(t, p.ca, resp.ID)
	if st.State != service.StateDone {
		t.Fatalf("dead-owner job finished %s (%s)", st.State, st.Error)
	}
	if st.Provenance == "peer" {
		t.Error("dead owner cannot have served this result")
	}
	m := clusterMetrics(t, p.a)
	if m.Errors == 0 {
		t.Error("failed fetch not counted")
	}
	// The failed fetch already marked b unhealthy, so the post-simulate
	// replication is skipped rather than attempted-and-failed: the dead
	// owner costs one fetch error total, not a retry storm per job.
	if m.ReplicateErrors != 0 || m.Replicated != 0 {
		t.Errorf("replication to a known-dead owner was attempted: %d ok / %d failed",
			m.Replicated, m.ReplicateErrors)
	}

	// The failed calls marked b unhealthy; the probe loop (also dying at
	// the proxy) keeps it down, so the next owner-keyed submission skips
	// the fetch up front and still completes.
	waitHealthy(t, p, false)
	spec2 := specOwnedBy(t, p, "b", 1)
	resp2, err := p.ca.Submit(ctx, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if st := watchDone(t, p.ca, resp2.ID); st.State != service.StateDone {
		t.Fatalf("skip-path job finished %s (%s)", st.State, st.Error)
	}
	if m := clusterMetrics(t, p.a); m.Skipped == 0 {
		t.Error("unhealthy owner was not skipped")
	}

	// Heal: probes pass again, and a result simulated on B is served to
	// A over the peer API with full provenance — convergence.
	p.proxy.SetMode(chaos.PeerPass)
	waitHealthy(t, p, true)
	spec3 := specOwnedBy(t, p, "b", 2)
	bresp, err := p.cb.Submit(ctx, spec3)
	if err != nil {
		t.Fatal(err)
	}
	canonical := watchDone(t, p.cb, bresp.ID).Report
	aresp, err := p.ca.Submit(ctx, spec3)
	if err != nil {
		t.Fatal(err)
	}
	ast := watchDone(t, p.ca, aresp.ID)
	if ast.Provenance != "peer" || ast.OriginNode != "b" {
		t.Errorf("healed serve provenance=%q origin_node=%q, want peer/b", ast.Provenance, ast.OriginNode)
	}
	if !bytes.Equal(ast.Report, canonical) {
		t.Error("healed peer serve delivered different bytes")
	}
	if c := p.proxy.Counts(); c.Dropped == 0 {
		t.Errorf("proxy never dropped anything: %+v", c)
	}
}

// TestChaosPeerOwnerSlow: a wedged owner stalls fetches into the 150ms
// timeout; the job completes by local simulation well inside the
// watchdog instead of hanging on the peer.
func TestChaosPeerOwnerSlow(t *testing.T) {
	p := startPeerPair(t, 2)
	ctx := context.Background()
	p.proxy.SetMode(chaos.PeerSlow) // stall until the fetcher gives up

	spec := specOwnedBy(t, p, "b", 0)
	start := time.Now()
	resp, err := p.ca.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := watchDone(t, p.ca, resp.ID)
	if st.State != service.StateDone {
		t.Fatalf("slow-owner job finished %s (%s)", st.State, st.Error)
	}
	if st.Provenance == "peer" {
		t.Error("stalled owner cannot have served this result")
	}
	// Submit blocked for ~one fetch timeout, then the job simulated
	// locally; seconds of slack for race-instrumented runs, but nowhere
	// near an unbounded hang.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("slow owner stalled the submission for %v", elapsed)
	}
	m := clusterMetrics(t, p.a)
	if m.Errors == 0 {
		t.Error("timed-out fetch not counted as an error")
	}
	if c := p.proxy.Counts(); c.Stalled == 0 {
		t.Errorf("proxy never stalled anything: %+v", c)
	}
}

// TestChaosPeerOwnerCorrupt: the owner has the record but every byte it
// sends is mangled — truncated or flipped inside the key prelude. The
// fetcher must reject the body, simulate locally, and serve bytes
// identical to the canonical result. No corrupt result is ever served.
func TestChaosPeerOwnerCorrupt(t *testing.T) {
	p := startPeerPair(t, 3)
	ctx := context.Background()

	// Owner B simulates the canonical results first, cleanly.
	const jobs = 4
	specs := make([]service.JobSpec, jobs)
	canonical := make([][]byte, jobs)
	for i := range specs {
		specs[i] = specOwnedBy(t, p, "b", i)
		resp, err := p.cb.Submit(ctx, specs[i])
		if err != nil {
			t.Fatal(err)
		}
		st := watchDone(t, p.cb, resp.ID)
		if st.State != service.StateDone {
			t.Fatalf("owner job %d finished %s", i, st.State)
		}
		canonical[i] = st.Report
	}

	p.proxy.SetMode(chaos.PeerCorrupt)
	for i, spec := range specs {
		// Fetch failures mark b unhealthy; flip it back so every
		// submission really attempts (and survives) a corrupt fetch.
		p.a.Cluster().ProbeOnce(ctx) // probes pass — only bodies corrupt
		if !p.a.Cluster().Healthy("b") {
			t.Fatal("probe through corrupting proxy should pass (readyz has no record body)")
		}
		resp, err := p.ca.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		st := watchDone(t, p.ca, resp.ID)
		if st.State != service.StateDone {
			t.Fatalf("corrupt-owner job %d finished %s (%s)", i, st.State, st.Error)
		}
		if st.Provenance == "peer" {
			t.Errorf("job %d: corrupt body was accepted as a peer serve", i)
		}
		if !bytes.Equal(st.Report, canonical[i]) {
			t.Errorf("job %d: served bytes differ from canonical after corruption", i)
		}
	}
	m := clusterMetrics(t, p.a)
	if m.Errors < jobs {
		t.Errorf("only %d fetch errors for %d corrupt bodies", m.Errors, jobs)
	}
	if m.Hits != 0 {
		t.Errorf("%d corrupt bodies counted as hits", m.Hits)
	}
	if c := p.proxy.Counts(); c.Corrupted < jobs {
		t.Errorf("proxy corrupted %d bodies, want >= %d", c.Corrupted, jobs)
	}
}

// TestChaosPeerOwnerKilledMidWorkload is the real-kill scenario: no
// proxy tricks — the owner daemon drains and its listener closes midway
// through a stream of submissions. Everything before the kill serves
// over the peer API; everything after simulates locally; zero failures.
func TestChaosPeerOwnerKilledMidWorkload(t *testing.T) {
	p := startPeerPair(t, 4)
	ctx := context.Background()

	// Phase 1: owner alive. Seed two results on B, serve them to A as
	// peer hits.
	for i := 0; i < 2; i++ {
		spec := specOwnedBy(t, p, "b", i)
		resp, err := p.cb.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		watchDone(t, p.cb, resp.ID)
		aresp, err := p.ca.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := watchDone(t, p.ca, aresp.ID); st.Provenance != "peer" {
			t.Fatalf("pre-kill submission %d provenance %q, want peer", i, st.Provenance)
		}
	}

	// Kill the owner for real: drain + close. Ongoing probes and fetches
	// now hit a dead socket.
	p.stopB()

	// Phase 2: every owner-keyed submission still completes, locally.
	for i := 2; i < 6; i++ {
		spec := specOwnedBy(t, p, "b", i)
		resp, err := p.ca.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("post-kill submit %d: %v", i, err)
		}
		st := watchDone(t, p.ca, resp.ID)
		if st.State != service.StateDone {
			t.Fatalf("post-kill job %d finished %s (%s)", i, st.State, st.Error)
		}
		if st.Provenance == "peer" {
			t.Errorf("post-kill job %d claims a peer serve from a dead owner", i)
		}
	}
	m := p.a.MetricsSnapshot()
	if m.Failed != 0 {
		t.Errorf("%d jobs failed across the owner kill, want 0", m.Failed)
	}
	if m.Cluster.Hits != 2 {
		t.Errorf("peer hits = %d, want exactly the 2 pre-kill serves", m.Cluster.Hits)
	}
	// And the fetcher's own health endpoint never flinched.
	if h, err := p.ca.Health(ctx); err != nil || h.Status != "ok" {
		t.Errorf("fetcher health after owner kill = %+v err=%v", h, err)
	}
}

// TestChaosPeerProxyModes sanity-checks the proxy itself: pass-through
// preserves bodies, and corruption always yields a body the cluster
// fetch layer rejects (the determinism the corrupt scenario rests on).
func TestChaosPeerProxyModes(t *testing.T) {
	canonical := []byte(`{"key":"abc123","report":{"x":1}}`)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(canonical)
	}))
	defer backend.Close()
	proxy := chaos.NewPeerProxy(backend.URL, 7)
	defer proxy.Close()

	get := func() ([]byte, error) {
		resp, err := http.Get(proxy.URL() + "/v1/peer/results/abc123")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	body, err := get()
	if err != nil || !bytes.Equal(body, canonical) {
		t.Fatalf("pass-through mangled the body: %q err=%v", body, err)
	}

	proxy.SetMode(chaos.PeerCorrupt)
	for i := 0; i < 20; i++ {
		body, err := get()
		if err != nil {
			t.Fatalf("corrupt mode should still answer: %v", err)
		}
		if bytes.Equal(body, canonical) {
			t.Fatalf("iteration %d: corrupt mode forwarded canonical bytes", i)
		}
	}
	if c := proxy.Counts(); c.Corrupted != 20 || c.Passed != 1 {
		t.Errorf("counts = %+v, want 20 corrupted / 1 passed", c)
	}
}
