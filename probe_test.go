// Cross-organization probe consistency: a CountingProbe attached to every
// organization must tally event counts that reconcile exactly with the
// statistics counters the organizations maintain themselves. Probe
// emissions sit adjacent to the counters they mirror, so any drift means
// an emission site was added, moved, or dropped without its counter.
package hybridvc_test

import (
	"testing"

	"hybridvc"
	"hybridvc/internal/baseline"
	"hybridvc/internal/core"
	"hybridvc/internal/pipeline"
)

// TestProbeCountsMatchStats runs a short gups window on every organization
// with the counting probe attached and checks the reconciliation
// invariants, both the generic pipeline ones and the per-organization
// mechanism counters.
func TestProbeCountsMatchStats(t *testing.T) {
	const insns = 20_000
	for _, org := range hybridvc.Organizations() {
		org := org
		t.Run(string(org), func(t *testing.T) {
			sys, err := hybridvc.New(hybridvc.Config{Org: org, LLCBytes: 256 << 10, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.LoadWorkload("gups"); err != nil {
				t.Fatal(err)
			}
			cp := &core.CountingProbe{}
			sys.Mem.SetProbe(cp)
			if _, err := sys.Run(insns); err != nil {
				t.Fatal(err)
			}
			if got := sys.Mem.Probe(); got != core.Probe(cp) {
				t.Fatalf("probe not restored after Run: %v", got)
			}

			eq := func(name string, probe, stat uint64) {
				t.Helper()
				if probe != stat {
					t.Errorf("%s: probe %d != stat %d", name, probe, stat)
				}
			}

			// Generic pipeline invariants.
			if cp.RouteTotal == 0 {
				t.Fatal("no route events observed")
			}
			eq("routes-sum", cp.RouteTotal, cp.Routes[0]+cp.Routes[1]+cp.Routes[2])
			eq("cache-accesses vs non-done routes", cp.CacheAccesses,
				cp.Routes[pipeline.Physical]+cp.Routes[pipeline.Virtual])
			eq("cache-accesses vs hit levels", cp.CacheAccesses,
				cp.CacheHitLevel[0]+cp.CacheHitLevel[1]+cp.CacheHitLevel[2]+cp.CacheHitLevel[3])
			eq("llc-misses vs memory-level hits", cp.LLCMisses, cp.CacheHitLevel[0])

			base := sys.Mem.(core.BaseHolder).BaseState()
			eq("faults", cp.Faults, base.Faults.Value())
			if cp.FaultsFixed > cp.Faults {
				t.Errorf("fixed faults %d > faults %d", cp.FaultsFixed, cp.Faults)
			}
			if !org.Virtualized() {
				// The 2D organizations walk nested tables outside
				// Base.TimedWalk, so only the native ones pin WalkSteps.
				eq("walk-steps", cp.WalkSteps, base.WalkSteps.Value())
			}

			// Organization-specific mechanism counters.
			switch m := sys.Mem.(type) {
			case *core.HybridMMU:
				eq("synonym candidates", cp.FilterCandidates, m.SynonymCandidates.Value())
				eq("synonym TLB lookups", cp.TLBLookups[pipeline.TLBSynonym], m.SynonymCandidates.Value())
				eq("false positives", cp.FalsePositives, m.FalsePositives.Value())
				eq("delayed demand", cp.DelayedDemand, m.DelayedTranslations.Value())
				eq("delayed writebacks", cp.DelayedWritebacks, m.WritebackXlations.Value())
				eq("delayed TLB misses",
					cp.TLBLookups[pipeline.TLBDelayed]-cp.TLBHits[pipeline.TLBDelayed],
					m.DelayedTLBMisses.Value())
				if org == hybridvc.Enigma {
					// Enigma bypasses the synonym filter entirely.
					eq("filter probes (bypassed)", cp.FilterProbes, 0)
				} else {
					eq("filter probes", cp.FilterProbes,
						m.SynonymCandidates.Value()+m.NonSynonymAccesses.Value())
				}
			case *core.VirtHybridMMU:
				eq("synonym candidates", cp.FilterCandidates, m.SynonymCandidates.Value())
				eq("synonym TLB lookups", cp.TLBLookups[pipeline.TLBSynonym], m.SynonymCandidates.Value())
				eq("false positives", cp.FalsePositives, m.FalsePositives.Value())
				eq("filter probes", cp.FilterProbes,
					m.SynonymCandidates.Value()+m.NonSynonymAccesses.Value())
				eq("delayed demand", cp.DelayedDemand, m.DelayedTranslations.Value())
				eq("two-step translations",
					cp.DelayedDemand+cp.DelayedWritebacks-cp.DelayedSCHits,
					m.TwoStepXlations.Value())
			case *baseline.Conventional:
				eq("huge TLB hits", cp.TLBHits[pipeline.TLBHuge], m.HugeTLBHits.Value())
				eq("TLB miss walks",
					cp.TLBLookups[pipeline.TLBL2]-cp.TLBHits[pipeline.TLBL2],
					m.TLBMissWalks.Value())
			case *baseline.DirectSegment:
				eq("huge TLB hits", cp.TLBHits[pipeline.TLBHuge], m.HugeTLBHits.Value())
				eq("TLB miss walks",
					cp.TLBLookups[pipeline.TLBL2]-cp.TLBHits[pipeline.TLBL2],
					m.TLBMissWalks.Value())
			case *baseline.RMM:
				eq("range walks",
					cp.TLBLookups[pipeline.TLBRange]-cp.TLBHits[pipeline.TLBRange],
					m.RangeWalks.Value())
			case *baseline.Victima:
				eq("TLB miss walks",
					cp.TLBLookups[pipeline.TLBXlatCache]-cp.TLBHits[pipeline.TLBXlatCache],
					m.TLBMissWalks.Value())
				eq("cached xlat hits", cp.TLBHits[pipeline.TLBXlatCache], m.CachedXlatHits.Value())
			case *core.RLTVC:
				eq("rlt lookups", cp.TLBLookups[pipeline.TLBRLT], cp.RouteTotal)
				eq("filter probes", cp.FilterProbes,
					m.SynonymCandidates.Value()+m.NonSynonymAccesses.Value())
				eq("synonym candidates", cp.FilterCandidates, m.SynonymCandidates.Value())
				eq("false positives (exact records)", cp.FalsePositives, 0)
				eq("false positives counter", m.FalsePositives.Value(), 0)
				eq("record rebuilds",
					cp.TLBLookups[pipeline.TLBXlatCache]-cp.TLBHits[pipeline.TLBXlatCache],
					m.RLTWalks.Value())
				eq("cached record hits", cp.TLBHits[pipeline.TLBXlatCache], m.CachedRecordHits.Value())
				eq("delayed demand", cp.DelayedDemand, m.DelayedTranslations.Value())
				eq("delayed writebacks", cp.DelayedWritebacks, m.WritebackXlations.Value())
			case *baseline.OVC:
				// OVC probes its (vestigial) filter on every reference.
				eq("filter probes", cp.FilterProbes, cp.RouteTotal)
			case *baseline.Virt2D:
				eq("2D walks", cp.Walks, m.Walks2D.Value())
			}
		})
	}
}
