package experiments

import (
	"fmt"

	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// Figure4Sizes are the delayed TLB sizes swept in Figure 4.
var Figure4Sizes = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Figure4Workloads are the applications of Figure 4.
var Figure4Workloads = []string{"gups", "milc", "mcf", "xalancbmk", "tigr", "omnetpp", "soplex"}

// Figure4Series holds one workload's delayed-TLB MPKI across sizes,
// normalized to the 1K-entry configuration (the paper plots normalized
// MPKI %).
type Figure4Series struct {
	Workload   string
	MPKI       []float64
	Normalized []float64
}

// Figure4 sweeps the delayed TLB size behind a 2 MiB LLC: for big-memory
// workloads (gups, milc, mcf) even a 32K-entry delayed TLB barely reduces
// misses — fixed-granularity delayed translation does not scale. Each
// (workload × size) point is one trace-model cell on the sweep runner.
func Figure4(scale Scale) ([]Figure4Series, *stats.Table, error) {
	n := scale.pick(150_000, 2_000_000)
	var cells []Cell
	for _, name := range Figure4Workloads {
		for _, size := range Figure4Sizes {
			name, size := name, size
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fig4/%s/%d", name, size),
				Fn: func() (any, error) {
					k := osmodel.NewKernel(osmodel.Config{PhysBytes: 16 << 30})
					cfg := core.DefaultHybridConfig(1)
					cfg.Delayed = core.DelayedPageTLB
					cfg.DelayedTLBEntries = size
					ms := core.NewHybridMMU(cfg, k)
					gens, err := workload.NewGroup(workload.Specs[name], k, 1)
					if err != nil {
						return nil, fmt.Errorf("fig4 %s: %w", name, err)
					}
					driveMem(ms, gens, n)
					var insns uint64
					for _, g := range gens {
						insns += g.Emitted()
					}
					return stats.PerKilo(ms.DelayedTLBMisses.Value(), insns), nil
				},
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}

	var series []Figure4Series
	for wi, name := range Figure4Workloads {
		s := Figure4Series{Workload: name}
		for si := range Figure4Sizes {
			s.MPKI = append(s.MPKI, res[wi*len(Figure4Sizes)+si].Value.(float64))
		}
		base := s.MPKI[0]
		for _, m := range s.MPKI {
			if base > 0 {
				s.Normalized = append(s.Normalized, m/base)
			} else {
				s.Normalized = append(s.Normalized, 0)
			}
		}
		series = append(series, s)
	}
	cols := []string{"workload"}
	for _, size := range Figure4Sizes {
		cols = append(cols, fmt.Sprintf("%dk ent.", size/1024))
	}
	t := stats.NewTable("Figure 4: normalized delayed-TLB miss rate (MPKI, % of 1K-entry)", cols...)
	for _, s := range series {
		row := []string{s.Workload}
		for _, v := range s.Normalized {
			row = append(row, fmt.Sprintf("%.1f%%", 100*v))
		}
		t.AddRow(row...)
	}
	return series, t, nil
}
