package baseline

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/energy"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/stats"
	"hybridvc/internal/tlb"
)

// Victima is a translation-architecture comparison point that backs the
// conventional two-level TLB with the data cache hierarchy itself: when
// both TLB levels miss, the L2 and LLC are probed for a cached translation
// block (a typed-payload line carrying the PTE) before the page walker
// runs, and every completed walk installs its leaf as such a block. The
// cache thereby acts as a massive third-level TLB whose capacity is stolen
// from data on demand — the Victima idea — while data accesses themselves
// stay physically addressed, exactly like the baseline.
type Victima struct {
	*pipeline.Engine
	tlbs   []*tlb.TwoLevel
	kernel *osmodel.Kernel

	// TLBMissWalks counts page walks (both TLB levels and the cached
	// translation block missed).
	TLBMissWalks stats.Counter
	// CachedXlatHits counts translations served by a cached translation
	// block instead of a walk.
	CachedXlatHits stats.Counter
	// XlatFills counts translation blocks installed after walks.
	XlatFills stats.Counter
	// XlatEvictions counts translation blocks pushed out of the LLC by
	// data (or flushed by shootdowns) — the capacity-competition metric.
	XlatEvictions stats.Counter
	TLBShoots     stats.Counter

	// missMemo records that RouteBatch just probed both TLB levels for
	// (core, asid, vpn) and found them missing. The engine scalar-processes
	// that stopper immediately, so the very next translate call consumes
	// the memo and commits the misses directly instead of rescanning two
	// sets it already knows are empty. One-shot: cleared unconditionally at
	// translate entry and on any shootdown.
	missMemoValid bool
	missMemoCore  int
	missMemoASID  addr.ASID
	missMemoVPN   uint64
}

// NewVictima builds the organization and registers as the kernel's sink
// and as the hierarchy's payload-eviction listener.
func NewVictima(cfg Config, k *osmodel.Kernel) *Victima {
	v := &Victima{kernel: k}
	v.Engine = pipeline.NewEngine(core.NewBase(cfg.Hier, cfg.DRAM, cfg.Energy), v, nil, nil)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		v.tlbs = append(v.tlbs, tlb.NewTwoLevel(tlb.DefaultTwoLevelConfig()))
	}
	v.Hier.SetPayloadListener(v)
	k.AttachSink(v)
	return v
}

// Name implements core.MemSystem.
func (v *Victima) Name() string { return "victima" }

// TLB exposes core i's two-level TLB.
func (v *Victima) TLB(core int) *tlb.TwoLevel { return v.tlbs[core] }

// packXlat encodes a translation entry into a payload word: the 4 KiB
// frame in the low 32 bits (PABits-PageBits = 28 used), the permission at
// bit 32, the shared flag at bit 34.
func packXlat(e tlb.Entry) uint64 {
	p := e.PFN | uint64(e.Perm)<<32
	if e.Shared {
		p |= 1 << 34
	}
	return p
}

// unpackXlat decodes a payload word back into a TLB entry for (asid, vpn).
func unpackXlat(asid addr.ASID, vpn, payload uint64) tlb.Entry {
	return tlb.Entry{
		ASID: asid, VPN: vpn, PFN: payload & (1<<32 - 1),
		Perm: addr.Perm(payload >> 32 & 3), Shared: payload>>34&1 != 0,
	}
}

// xlatName is the cache name of the translation block covering (asid, vpn).
func xlatName(asid addr.ASID, vpn uint64) addr.Name {
	return addr.PayloadName(addr.PayloadTranslation, asid, addr.PageToVA(vpn))
}

// translate resolves VA->PA through the TLBs, then the cached translation
// blocks, then the page walker.
func (v *Victima) translate(req *core.Request) (addr.PA, addr.Perm, uint64, bool) {
	tl := v.tlbs[req.Core]
	vpn := req.VA.Page()
	memoMiss := v.missMemoValid && v.missMemoCore == req.Core &&
		v.missMemoASID == req.Proc.ASID && v.missMemoVPN == vpn
	v.missMemoValid = false
	v.Acc.Access(energy.L1TLB, 1)
	var tres tlb.Result
	if memoMiss {
		// RouteBatch already scanned both levels and missed; commit the
		// clock ticks and statistics those lookups would have recorded and
		// fall through to the cached-translation probe with tres.Level == 0.
		tl.L1.RecordMiss()
		tl.L2.RecordMiss()
	} else {
		tres = tl.Lookup(req.Proc.ASID, vpn)
	}
	if p := v.Probe(); p != nil {
		p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL1, Hit: tres.Level == 1})
		if tres.Level != 1 {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBL2, Hit: tres.Level == 2})
		}
	}
	var lat uint64
	switch tres.Level {
	case 1:
		// L1 TLB lookup overlaps L1 cache indexing: no added latency.
	case 2:
		v.Acc.Access(energy.L2TLB, 1)
		lat = tl.L2.Config().Latency
	default:
		v.Acc.Access(energy.L2TLB, 1)
		lat = tl.L2.Config().Latency
		// Both TLB levels missed: probe the data caches for the translation
		// block before falling back to the walker.
		name := xlatName(req.Proc.ASID, vpn)
		payload, plat, hit := v.Hier.ProbePayload(req.Core, name)
		lat += plat
		if p := v.Probe(); p != nil {
			p.TLB(pipeline.TLBEvent{Core: req.Core, Level: pipeline.TLBXlatCache, Hit: hit})
		}
		if hit {
			v.CachedXlatHits.Inc()
			e := unpackXlat(req.Proc.ASID, vpn, payload)
			tl.Insert(e)
			return addr.FrameToPA(e.PFN) + addr.PA(req.VA.PageOffset()), e.Perm, lat, true
		}
		v.TLBMissWalks.Inc()
		leaf, wlat, ok := v.TimedWalk(req.Core, req.Proc, req.VA.PageAligned())
		lat += wlat
		if !ok {
			return 0, 0, lat, false
		}
		e := tlb.Entry{
			ASID: req.Proc.ASID, VPN: vpn, PFN: leaf.FrameFor4K(req.VA),
			Perm: leaf.Perm, Shared: leaf.Shared,
		}
		v.Hier.FillPayload(req.Core, name, packXlat(e))
		v.XlatFills.Inc()
		tl.Insert(e)
		return leaf.PA(req.VA), leaf.Perm, lat, true
	}
	return addr.FrameToPA(tres.Entry.PFN) + addr.PA(req.VA.PageOffset()),
		tres.Entry.Perm, lat, true
}

// Route implements pipeline.FrontEnd.
func (v *Victima) Route(req *core.Request, res *core.Result) pipeline.Decision {
	pa, perm, lat, ok := v.translate(req)
	res.Latency += lat
	if !ok {
		fl, fixed := v.HandleFault(req.Proc, req.VA, req.Kind == cache.Write)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		pa, perm, lat, ok = v.translate(req)
		res.Latency += lat
		if !ok {
			return pipeline.DoneNow()
		}
	}
	if req.Kind == cache.Write && !perm.AllowsWrite() {
		fl, fixed := v.HandleFault(req.Proc, req.VA, true)
		res.Latency += fl
		res.Fault = true
		if !fixed {
			return pipeline.DoneNow()
		}
		pa, perm, _, _ = v.translate(req)
	}
	return pipeline.GoPhysical(pa, perm)
}

// RouteBatch implements pipeline.BatchFrontEnd: an element is pure when
// one of the two TLB levels already translates it and the access does not
// write-fault. The cached-translation probe and the walk both touch the
// hierarchy, so a both-levels miss stops the run with the miss memo set
// for the scalar redo.
func (v *Victima) RouteBatch(reqs []core.Request, res []core.Result, dec []pipeline.Decision) int {
	i := 0
	for ; i < len(reqs); i++ {
		if !v.routeBatchOne(&reqs[i], &res[i], &dec[i]) {
			break
		}
	}
	return i
}

// routeBatchOne decodes one batch element when a TLB level already
// translates it, committing the hit in the same pass; it reports false —
// leaving the element untouched apart from the both-levels-missed memo —
// when the element is impure (cached-translation probe, walk, or fault).
func (v *Victima) routeBatchOne(req *core.Request, res *core.Result, dec *pipeline.Decision) bool {
	tl := v.tlbs[req.Core]
	vpn := req.VA.Page()
	if e, ok := tl.L1.Probe(req.Proc.ASID, vpn); ok {
		if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
			return false
		}
		v.Acc.Access(energy.L1TLB, 1)
		tl.L1.Touch(e)
		// L1 TLB lookup overlaps L1 cache indexing: no added latency.
		*dec = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
		return true
	}
	if e, ok := tl.L2.Probe(req.Proc.ASID, vpn); ok {
		if req.Kind == cache.Write && !e.Perm.AllowsWrite() {
			return false
		}
		v.Acc.Access(energy.L1TLB, 1)
		v.Acc.Access(energy.L2TLB, 1)
		tl.L1.RecordMiss()
		tl.L2.Touch(e)
		cp := *e
		tl.L1.Insert(cp)
		res.Latency += tl.L2.Config().Latency
		*dec = pipeline.GoPhysical(addr.FrameToPA(e.PFN)+addr.PA(req.VA.PageOffset()), e.Perm)
		return true
	}
	// Both levels missed: the scalar path probes the cached translation
	// blocks and, if need be, walks. Leave a memo so its translate does not
	// rescan the sets this pass just probed.
	v.missMemoValid, v.missMemoCore = true, req.Core
	v.missMemoASID, v.missMemoVPN = req.Proc.ASID, vpn
	return false
}

// PayloadEvicted implements cache.PayloadListener: a translation block
// left the LLC (data pushed it out, or a flush below removed it).
func (v *Victima) PayloadEvicted(addr.Name, uint64) { v.XlatEvictions.Inc() }

// PayloadCoherence audits one cached translation block against the
// authoritative page tables (the fault checker's PayloadCoherence hook).
func (v *Victima) PayloadCoherence(n addr.Name, payload uint64) error {
	if n.Kind != addr.PayloadTranslation {
		return fmt.Errorf("victima: unexpected payload kind in block %s", n)
	}
	proc := v.kernel.Process(n.ASID)
	if proc == nil {
		return fmt.Errorf("victima: translation block %s names dead address space", n)
	}
	va := addr.VA(n.Addr)
	pte, ok := proc.PT.Lookup(va)
	if !ok {
		return fmt.Errorf("victima: stale translation block %s: page not mapped", n)
	}
	want := pte.Frame
	if pte.Huge {
		want |= va.Page() & (addr.HugePageSize/addr.PageSize - 1)
	}
	e := unpackXlat(n.ASID, va.Page(), payload)
	if e.PFN != want {
		return fmt.Errorf("victima: translation block %s maps frame %#x, page table says %#x",
			n, e.PFN, want)
	}
	if e.Perm != pte.Perm || e.Shared != pte.Shared {
		return fmt.Errorf("victima: translation block %s perm/shared (%v,%v) disagree with page table (%v,%v)",
			n, e.Perm, e.Shared, pte.Perm, pte.Shared)
	}
	return nil
}

// --- osmodel.ShootdownSink ---

// TLBShootdown invalidates the page in every core's TLBs and flushes its
// cached translation block, keeping the cached copy coherent with the page
// table exactly like a TLB entry.
func (v *Victima) TLBShootdown(asid addr.ASID, vpn uint64) {
	v.TLBShoots.Inc()
	v.missMemoValid = false
	for _, tl := range v.tlbs {
		tl.Shootdown(asid, vpn)
	}
	v.Hier.FlushName(xlatName(asid, vpn))
}

// FlushPage is a no-op for the physically named data lines (remaps do not
// change physical names; the OS copies or zeroes frames functionally).
func (v *Victima) FlushPage(page addr.Name) {
	if page.Synonym {
		v.Hier.FlushPage(page)
	}
}

// SetPagePerm updates TLB and cached-translation permissions by shooting
// the entries down.
func (v *Victima) SetPagePerm(page addr.Name, perm addr.Perm) {
	if !page.Synonym {
		v.TLBShootdown(page.ASID, page.Page())
	}
}

// FilterUpdate is a no-op: no synonym filters here.
func (v *Victima) FilterUpdate(addr.ASID) {}

// FlushASID drops the address space's TLB entries and cached translation
// blocks (physical data lines stay; the frames are recycled by the OS).
func (v *Victima) FlushASID(asid addr.ASID) {
	v.missMemoValid = false
	for _, tl := range v.tlbs {
		tl.FlushASID(asid)
	}
	// The only virtually named lines this organization caches are its
	// translation blocks, so the hierarchy ASID flush removes exactly those.
	v.Hier.FlushASID(asid)
}

var _ cache.PayloadListener = (*Victima)(nil)
