package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hybridvc/internal/service/store"
)

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("n1=http://a:1, n2=http://b:2/ ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != (Member{"n1", "http://a:1"}) || ms[1] != (Member{"n2", "http://b:2"}) {
		t.Fatalf("ParsePeers = %+v", ms)
	}
	for _, bad := range []string{"n1", "n1=", "=http://a:1", "n1=ftp://a", "n1=http://a,n1=http://b", "n1=notaurl"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Members: []Member{{"a", "http://a"}}}); err == nil {
		t.Error("New without node id accepted")
	}
	if _, err := New(Config{NodeID: "x", Members: []Member{{"a", "http://a"}}}); err == nil {
		t.Error("New with self absent and no advertise accepted")
	}
	if _, err := New(Config{NodeID: "a", Members: []Member{{"a", "http://a"}}}); err == nil {
		t.Error("single-member cluster accepted")
	}
	c, err := New(Config{NodeID: "x", Advertise: "http://x/", Members: []Member{{"a", "http://a"}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != (Member{"x", "http://x"}) {
		t.Errorf("Self = %+v", c.Self())
	}
	if len(c.Members()) != 2 {
		t.Errorf("Members = %+v", c.Members())
	}
}

// peerStub is a minimal owner: serves one record under the peer GET
// route and records PUTs, enforcing the token.
func peerStub(t *testing.T, token string, rec *store.Record, puts *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(TokenHeader) != token {
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		if !strings.HasPrefix(r.URL.Path, PeerResultsPath) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, PeerResultsPath)
		switch r.Method {
		case http.MethodGet:
			if rec == nil || rec.Key != key {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(rec)
		case http.MethodPut:
			if puts != nil {
				puts.Add(1)
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}))
}

func twoNode(t *testing.T, ownerURL, token string) *Cluster {
	t.Helper()
	c, err := New(Config{
		NodeID: "self", Advertise: "http://self.invalid",
		Members:      []Member{{"owner", ownerURL}},
		Token:        token,
		FetchTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFetchHitMissAndAuth(t *testing.T) {
	rec := store.Record{Key: "k1", Report: json.RawMessage(`{"ok":true}`), Lineage: "ln-1", Node: "owner"}
	ts := peerStub(t, "sekrit", &rec, nil)
	defer ts.Close()

	c := twoNode(t, ts.URL, "sekrit")
	owner := Member{ID: "owner", URL: ts.URL}

	got, ok, err := c.Fetch(context.Background(), owner, "k1")
	if err != nil || !ok {
		t.Fatalf("Fetch hit: ok=%v err=%v", ok, err)
	}
	if got.Lineage != "ln-1" || got.Node != "owner" || string(got.Report) != `{"ok":true}` {
		t.Errorf("Fetch record = %+v", got)
	}
	if _, ok, err := c.Fetch(context.Background(), owner, "k2"); err != nil || ok {
		t.Fatalf("Fetch miss: ok=%v err=%v (want clean miss)", ok, err)
	}

	// Wrong token: the owner answers 401, which is a degraded peer, not
	// a miss — and it marks the peer unhealthy.
	bad := twoNode(t, ts.URL, "wrong")
	if _, ok, err := bad.Fetch(context.Background(), owner, "k1"); err == nil || ok {
		t.Fatalf("Fetch with bad token: ok=%v err=%v (want error)", ok, err)
	}
	if bad.Healthy("owner") {
		t.Error("failed fetch should mark peer unhealthy")
	}
	m := bad.Metrics()
	if m.Errors != 1 || m.Fetches != 1 {
		t.Errorf("metrics after auth failure = %+v", m)
	}
}

func TestFetchRejectsCorruptBodies(t *testing.T) {
	cases := map[string]http.HandlerFunc{
		"truncated json": func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"key":"k1","report":{"tr`))
		},
		"wrong key": func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(store.Record{Key: "other", Report: json.RawMessage(`{}`)})
		},
		"empty record": func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(store.Record{Key: "k1"})
		},
	}
	for name, h := range cases {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()
			c := twoNode(t, ts.URL, "")
			_, ok, err := c.Fetch(context.Background(), Member{ID: "owner", URL: ts.URL}, "k1")
			if err == nil || ok {
				t.Fatalf("corrupt body served: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestFetchTimeoutMarksUnhealthy(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	defer slow.Close()
	c, err := New(Config{
		NodeID: "self", Advertise: "http://self.invalid",
		Members:      []Member{{"owner", slow.URL}},
		FetchTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, ok, ferr := c.Fetch(context.Background(), Member{ID: "owner", URL: slow.URL}, "k1")
	if ferr == nil || ok {
		t.Fatalf("slow owner: ok=%v err=%v (want timeout error)", ok, ferr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("fetch took %v, want ~FetchTimeout", elapsed)
	}
	if c.Healthy("owner") {
		t.Error("timed-out owner still healthy")
	}
}

func TestReplicateRetriesThenCounts(t *testing.T) {
	var puts atomic.Int64
	var fails atomic.Int64
	fails.Store(1) // first attempt fails, retry succeeds
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails.Add(-1) >= 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	c, err := New(Config{
		NodeID: "self", Advertise: "http://self.invalid",
		Members:          []Member{{"owner", ts.URL}},
		FetchTimeout:     time.Second,
		ReplicateBackoff: Backoff{Base: 5 * time.Millisecond, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{Key: "k1", Report: json.RawMessage(`{}`)}
	if err := c.Replicate(context.Background(), Member{ID: "owner", URL: ts.URL}, rec); err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	if puts.Load() != 1 {
		t.Errorf("puts = %d, want 1", puts.Load())
	}
	if m := c.Metrics(); m.Replicated != 1 || m.ReplicateErrors != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestHealthProbeRestoresPeer(t *testing.T) {
	ready := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, err := New(Config{
		NodeID: "self", Advertise: "http://self.invalid",
		Members:      []Member{{"owner", ts.URL}},
		FetchTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Healthy("owner") {
		t.Fatal("peer should start optimistically healthy")
	}
	c.ProbeOnce(context.Background()) // readyz 503 → unhealthy
	if c.Healthy("owner") {
		t.Fatal("peer healthy after failed probe")
	}
	if m := c.Metrics(); m.PeersHealthy != 0 || m.Nodes != 2 {
		t.Errorf("metrics = %+v", m)
	}
	ready.Store(true)
	c.ProbeOnce(context.Background())
	if !c.Healthy("owner") {
		t.Fatal("peer not restored by successful probe")
	}
	if m := c.Metrics(); m.PeersHealthy != 1 {
		t.Errorf("PeersHealthy = %d, want 1", m.PeersHealthy)
	}
}

func TestStartStopProbeLoop(t *testing.T) {
	probes := atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
	}))
	defer ts.Close()
	c, err := New(Config{
		NodeID: "self", Advertise: "http://self.invalid",
		Members:       []Member{{"owner", ts.URL}},
		ProbeInterval: 10 * time.Millisecond,
		FetchTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if probes.Load() < 2 {
		t.Fatal("probe loop never fired")
	}
	c.Stop()
	c.Stop() // idempotent
	n := probes.Load()
	time.Sleep(50 * time.Millisecond)
	if probes.Load() > n+1 { // one in-flight probe may land post-Stop
		t.Errorf("probes kept firing after Stop: %d → %d", n, probes.Load())
	}
}

func TestOwnerOfUsesMembership(t *testing.T) {
	c, err := New(Config{
		NodeID: "n1", Advertise: "http://n1.invalid",
		Members: []Member{{"n2", "http://n2.invalid"}, {"n3", "http://n3.invalid"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"n1", "n2", "n3"}
	for _, key := range testKeys(32) {
		want := Owner(key, ids)
		if got := c.OwnerOf(key); got.ID != want {
			t.Fatalf("OwnerOf(%.12s…) = %q, want %q", key, got.ID, want)
		}
	}
}
