// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (shared-memory characterization), Table II (synonym
// filter effectiveness), Table III (segment counts, RMM MPKI, memory
// utilization), Figure 4 (delayed TLB scaling), Figure 7 (index cache
// sensitivity), Figure 9 (native performance), the virtualized performance
// comparison (Section VI), the translation-energy comparison, and the
// ablations called out in DESIGN.md. The same functions back the
// `tablegen` command and the root benchmark suite.
package experiments

import (
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/workload"
)

// Scale selects experiment fidelity: Quick for CI/benchmarks, Full for
// paper-shaped runs.
type Scale int

const (
	// Quick runs shortened instruction windows.
	Quick Scale = iota
	// Full runs the long windows.
	Full
)

// pick chooses an instruction budget by scale.
func (s Scale) pick(quick, full uint64) uint64 {
	if s == Full {
		return full
	}
	return quick
}

// driveMem replays n instructions per generator through the memory system
// without the timing cores — the paper's Pin-style trace model (used for
// Tables I-III and the structure-sensitivity figures, where only access
// counts matter). Generators round-robin over the system's cores.
func driveMem(ms core.MemSystem, gens []*workload.Generator, n uint64) {
	cores := ms.Hierarchy().NumCores()
	const chunk = 256
	done := make([]uint64, len(gens))
	for remaining := true; remaining; {
		remaining = false
		for gi, g := range gens {
			if done[gi] >= n {
				continue
			}
			remaining = true
			c := gi % cores
			for i := 0; i < chunk && done[gi] < n; i++ {
				in := g.Next()
				done[gi]++
				if !in.IsMem {
					continue
				}
				kind := cache.Read
				if in.IsStore {
					kind = cache.Write
				}
				ms.Access(core.Request{Core: c, Kind: kind, VA: in.VA, Proc: g.Proc})
			}
		}
	}
}
