// End-to-end tests of the hvcd service through its HTTP API, using the
// same client package cmd/hvcctl is built on. The concurrency-heavy
// cases double as the -race integration suite (see make race / make ci).
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
	"hybridvc/internal/stats"
)

// startServer builds a Server on cfg, wraps it in an httptest server and
// returns a client pointed at it. Cleanup drains with a deadline.
func startServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return srv, client.New(ts.URL, nil)
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the final status.
func waitState(t *testing.T, c *client.Client, id, want string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		switch st.State {
		case want, service.StateDone, service.StateFailed, service.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitTwiceServedFromCache is the acceptance path: submitting the
// same spec twice must return byte-identical report JSON with the second
// submission served from the cache — exactly one simulation executes,
// asserted through the daemon's own counters.
func TestSubmitTwiceServedFromCache(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 2})
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 60_000, Seed: 7}

	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Deduped {
		t.Fatalf("first submission not fresh: %+v", first)
	}
	st1, err := c.Watch(ctx, first.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != service.StateDone {
		t.Fatalf("first job finished %s (%s)", st1.State, st1.Error)
	}
	if len(st1.Report) == 0 {
		t.Fatal("done job has no report")
	}
	if st1.Intervals == 0 {
		t.Error("sim job recorded no timeline intervals")
	}

	second, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Errorf("key changed between identical submissions: %s vs %s", first.Key, second.Key)
	}
	st2, err := c.Job(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st1.Report, st2.Report) {
		t.Errorf("cached report differs from original:\n%s\nvs\n%s", st1.Report, st2.Report)
	}

	m := srv.MetricsSnapshot()
	if m.Simulated != 1 {
		t.Errorf("simulated = %d, want exactly 1 (second submission must not re-simulate)", m.Simulated)
	}
	if m.CacheHits < 1 {
		t.Errorf("cache hits = %d, want >= 1", m.CacheHits)
	}
	if m.Submitted != 2 || m.Completed != 1 {
		t.Errorf("submitted/completed = %d/%d, want 2/1", m.Submitted, m.Completed)
	}

	// The counters must agree over HTTP too (client → /metrics → hvcd block).
	hm, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Simulated != 1 || hm.Workers != 2 {
		t.Errorf("/metrics simulated/workers = %d/%d, want 1/2", hm.Simulated, hm.Workers)
	}
}

// TestCatalogEndpoints sanity-checks the discovery surface the client and
// hvcctl rely on.
func TestCatalogEndpoints(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	cat, err := c.Orgs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Organizations) == 0 || len(cat.Workloads) == 0 {
		t.Fatalf("catalog empty: %d orgs, %d workloads", len(cat.Organizations), len(cat.Workloads))
	}
	for _, w := range cat.Workloads {
		if len(w.Digest) != 64 {
			t.Errorf("workload %s digest %q is not a sha256 hex", w.Name, w.Digest)
		}
	}

	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Error("no experiments listed")
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Errorf("health = %+v, want ok", h)
	}
}

// TestOrgsCatalogMatchesOrganizations pins the discovery contract: the
// /v1/orgs organization list is generated from hybridvc.Organizations(),
// so a newly registered organization (the typed-payload designs victima
// and rlt-vc being the latest) appears to service clients automatically,
// in canonical order and with the right virtualization flag — no schema
// bump, no hand-maintained list to drift.
func TestOrgsCatalogMatchesOrganizations(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1})
	cat, err := c.Orgs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := hybridvc.Organizations()
	if len(cat.Organizations) != len(want) {
		t.Fatalf("/v1/orgs lists %d organizations, registry has %d", len(cat.Organizations), len(want))
	}
	seen := map[string]bool{}
	for i, o := range cat.Organizations {
		if o.Name != string(want[i]) {
			t.Errorf("org %d = %q, want %q (canonical order)", i, o.Name, want[i])
		}
		if o.Virtualized != want[i].Virtualized() {
			t.Errorf("org %s virtualized = %v, want %v", o.Name, o.Virtualized, want[i].Virtualized())
		}
		seen[o.Name] = true
	}
	for _, name := range []string{"victima", "rlt-vc"} {
		if !seen[name] {
			t.Errorf("newly added organization %q missing from /v1/orgs", name)
		}
	}
}

// TestTimelineStreaming streams a job's NDJSON timeline while it runs and
// checks the stream is gapless and sums to the final report.
func TestTimelineStreaming(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	resp, err := c.Submit(ctx, service.JobSpec{Instructions: 100_000, Interval: 5_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []stats.Interval
	if err := c.Timeline(ctx, resp.ID, true, func(iv stats.Interval) error {
		streamed = append(streamed, iv)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatal("streamed no intervals")
	}
	var insns uint64
	for i, iv := range streamed {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d: stream is gappy or out of order", i, iv.Index)
		}
		insns += iv.Insns
	}
	st, err := c.Watch(ctx, resp.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Instructions uint64 `json:"instructions"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if insns != rep.Instructions {
		t.Errorf("streamed insns %d != report instructions %d", insns, rep.Instructions)
	}

	// A cache-served resubmission must stream the same recorded timeline.
	resp2, err := c.Submit(ctx, service.JobSpec{Instructions: 100_000, Interval: 5_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var replayed int
	if err := c.Timeline(ctx, resp2.ID, false, func(stats.Interval) error {
		replayed++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != len(streamed) {
		t.Errorf("cached job replayed %d intervals, original streamed %d", replayed, len(streamed))
	}
}

// TestCancelUnbindsKey cancels a running job and checks that the spec can
// be resubmitted fresh (a canceled job must not satisfy future
// submissions from the dedup index).
func TestCancelUnbindsKey(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	spec := service.JobSpec{Instructions: 500_000_000, Seed: 11}

	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, resp.ID, service.StateRunning)
	if err := c.Cancel(ctx, resp.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Watch(ctx, resp.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", st.State, st.Error)
	}

	// Cancelling a terminal job is a conflict, not a success.
	if err := c.Cancel(ctx, resp.ID); err == nil {
		t.Error("second cancel of a terminal job succeeded")
	}

	resp2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cached || resp2.Deduped || resp2.ID == resp.ID {
		t.Errorf("resubmission after cancel coalesced onto the corpse: %+v", resp2)
	}
	if err := c.Cancel(ctx, resp2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch(ctx, resp2.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m := srv.MetricsSnapshot(); m.Canceled != 2 {
		t.Errorf("canceled = %d, want 2", m.Canceled)
	}
}

// TestQueueBackpressure fills the 1-deep queue behind a busy worker and
// checks the daemon answers 429 with Retry-After instead of queueing
// unboundedly.
func TestQueueBackpressure(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	long := func(seed int64) service.JobSpec {
		return service.JobSpec{Instructions: 500_000_000, Seed: seed}
	}

	a, err := c.Submit(ctx, long(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, a.ID, service.StateRunning)
	b, err := c.Submit(ctx, long(2))
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(ctx, long(3))
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 429 {
		t.Fatalf("submit into full queue: %v, want 429", err)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Errorf("429 not retryable with Retry-After: %+v", apiErr)
	}
	if m := srv.MetricsSnapshot(); m.QueueFull != 1 {
		t.Errorf("queue_full = %d, want 1", m.QueueFull)
	}

	for _, id := range []string{a.ID, b.ID} {
		if err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Watch(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRateLimit checks the per-client token bucket: burst 1 means the
// second immediate request is refused 429 before its body is even read.
func TestRateLimit(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, RatePerSec: 0.5, RateBurst: 1})
	ctx := context.Background()
	bad := service.JobSpec{Kind: "nonsense"} // rejected post-limiter; schedules nothing

	_, err := c.Submit(ctx, bad)
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("first submit: %v, want 400 (past the limiter)", err)
	}
	_, err = c.Submit(ctx, bad)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 429 {
		t.Fatalf("second submit: %v, want 429", err)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Errorf("Retry-After = %v, want 2s (1/rate)", apiErr.RetryAfter)
	}
	if m := srv.MetricsSnapshot(); m.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", m.RateLimited)
	}
}

// TestDrain checks graceful shutdown: running jobs are cancelled, new
// submissions answer 503, and health reports draining.
func TestDrain(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	resp, err := c.Submit(ctx, service.JobSpec{Instructions: 500_000_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, resp.ID, service.StateRunning)

	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st, err := c.Job(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCanceled {
		t.Errorf("job state after drain = %s", st.State)
	}

	_, err = c.Submit(ctx, service.JobSpec{Seed: 22})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 503 {
		t.Errorf("submit while draining: %v, want 503", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Errorf("health while draining = %+v", h)
	}
}

// The sweep drain/resume test registers one synthetic experiment: three
// cells return instantly, the last blocks on sweepGate until the test
// releases it. Run counts prove which cells re-executed after resume.
var (
	registerSweepExp sync.Once
	sweepGate        = make(chan struct{})
	sweepCellRuns    [4]atomic.Int32
)

func sweepExpName() string {
	registerSweepExp.Do(func() {
		err := experiments.Add(experiments.Experiment{
			Name:        "svc-test-exp",
			Description: "service drain/resume fixture",
			Run: func(experiments.Scale) ([]*stats.Table, error) {
				cells := make([]experiments.Cell, len(sweepCellRuns))
				for i := range cells {
					cells[i] = experiments.Cell{
						Label: fmt.Sprintf("svc-test/cell%d", i),
						Fn: func() (any, error) {
							sweepCellRuns[i].Add(1)
							if i == len(cells)-1 {
								<-sweepGate
							}
							return fmt.Sprintf("v%d", i), nil
						},
						DecodeValue: func(b []byte) (any, error) {
							var s string
							err := json.Unmarshal(b, &s)
							return s, err
						},
					}
				}
				res, err := experiments.RunCells(cells)
				if err != nil {
					return nil, err
				}
				tbl := stats.NewTable("svc-test", "cell", "value")
				for i, r := range res {
					tbl.AddRow(fmt.Sprintf("cell%d", i), fmt.Sprint(r.Value))
				}
				return []*stats.Table{tbl}, nil
			},
		})
		if err != nil {
			panic(err)
		}
	})
	return "svc-test-exp"
}

// TestSweepDrainCheckpointResume is the daemon-restart story: a sweep
// interrupted by drain leaves its content-addressed checkpoint journal in
// the spool dir, and resubmitting the same spec to a new server on the
// same spool resumes the journaled cells instead of re-running them.
func TestSweepDrainCheckpointResume(t *testing.T) {
	spool := t.TempDir()
	spec := service.JobSpec{Kind: service.KindSweep, Experiment: sweepExpName()}
	ctx := context.Background()

	srv1, c1 := startServer(t, service.Config{Workers: 1, SpoolDir: spool})
	resp, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(spool, resp.Key+".ndjson")

	// Wait until the three ungated cells are journaled (the fourth blocks
	// on sweepGate, pinning the sweep mid-flight).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(journal); err == nil &&
			strings.Count(string(data), "\n") >= len(sweepCellRuns)-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint journal never reached 3 records")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := c1.Job(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCanceled {
		t.Fatalf("sweep state after drain = %s (%s)", st.State, st.Error)
	}
	if st.Checkpoint == "" {
		t.Error("drained sweep reports no checkpoint path")
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal gone after drain: %v", err)
	}

	// "Restart": a fresh server over the same spool dir. Release the gate
	// so the one unjournaled cell can finish this time.
	close(sweepGate)
	_, c2 := startServer(t, service.Config{Workers: 1, SpoolDir: spool})
	resp2, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Watch(ctx, resp2.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateDone {
		t.Fatalf("resumed sweep finished %s (%s)", st2.State, st2.Error)
	}
	if len(st2.Tables) != 1 || !strings.Contains(st2.Tables[0], "v3") {
		t.Errorf("resumed sweep tables wrong: %q", st2.Tables)
	}
	for i := 0; i < len(sweepCellRuns)-1; i++ {
		if n := sweepCellRuns[i].Load(); n != 1 {
			t.Errorf("cell %d ran %d times; journaled cells must not re-run on resume", i, n)
		}
	}
	if n := sweepCellRuns[len(sweepCellRuns)-1].Load(); n != 2 {
		t.Errorf("gated cell ran %d times, want 2 (abandoned attempt + resume)", n)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Errorf("journal not removed after successful resume: %v", err)
	}
}

// TestConcurrentClients is the -race integration test: 12 concurrent
// clients submit, watch, stream, deduplicate and cancel jobs against one
// daemon, then the daemon drains under load.
func TestConcurrentClients(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 4, QueueDepth: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const clients = 12
	const iters = 2
	shared := service.JobSpec{Instructions: 30_000, Interval: 5_000, Seed: 1000}

	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*2)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch id % 3 {
				case 0: // unique spec, watch to completion
					spec := service.JobSpec{Instructions: 30_000, Interval: 5_000,
						Seed: int64(100*id + it + 1)}
					resp, err := c.SubmitWait(ctx, spec)
					if err != nil {
						errs <- fmt.Errorf("client %d submit: %w", id, err)
						return
					}
					st, err := c.Watch(ctx, resp.ID, 10*time.Millisecond)
					if err != nil {
						errs <- fmt.Errorf("client %d watch: %w", id, err)
						return
					}
					if st.State != service.StateDone {
						errs <- fmt.Errorf("client %d job %s: %s (%s)", id, resp.ID, st.State, st.Error)
						return
					}
				case 1: // shared spec: exercises dedup/coalescing + cache
					resp, err := c.SubmitWait(ctx, shared)
					if err != nil {
						errs <- fmt.Errorf("client %d shared submit: %w", id, err)
						return
					}
					var n int
					if err := c.Timeline(ctx, resp.ID, true, func(stats.Interval) error {
						n++
						return nil
					}); err != nil {
						errs <- fmt.Errorf("client %d timeline: %w", id, err)
						return
					}
					st, err := c.Watch(ctx, resp.ID, 10*time.Millisecond)
					if err != nil {
						errs <- fmt.Errorf("client %d shared watch: %w", id, err)
						return
					}
					if st.State == service.StateDone && n == 0 {
						errs <- fmt.Errorf("client %d: done shared job streamed 0 intervals", id)
						return
					}
				case 2: // submit long, cancel immediately, await terminal
					spec := service.JobSpec{Instructions: 500_000_000,
						Seed: int64(9000 + 100*id + it)}
					resp, err := c.SubmitWait(ctx, spec)
					if err != nil {
						errs <- fmt.Errorf("client %d long submit: %w", id, err)
						return
					}
					if err := c.Cancel(ctx, resp.ID); err != nil {
						// Another goroutine's duplicate may already be
						// terminal (409); only transport errors are fatal.
						if _, ok := err.(*client.APIError); !ok {
							errs <- fmt.Errorf("client %d cancel: %w", id, err)
							return
						}
					}
					if _, err := c.Watch(ctx, resp.ID, 10*time.Millisecond); err != nil {
						errs <- fmt.Errorf("client %d canceled watch: %w", id, err)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.MetricsSnapshot()
	if m.Failed != 0 {
		t.Errorf("failed = %d, want 0", m.Failed)
	}
	if m.Simulated == 0 || m.Submitted < clients {
		t.Errorf("implausible load counters: %+v", m)
	}
	for _, j := range srv.Jobs() {
		if s := j.State(); s == service.StateFailed {
			t.Errorf("job %s failed: %+v", j.ID, j.Status())
		}
	}
}
