// Command hvcd is the simulation-as-a-service daemon: a long-running
// HTTP server that accepts simulation and sweep jobs, schedules them on
// a bounded worker pool, and serves repeated submissions of the same
// configuration from a content-addressed result cache instead of
// re-simulating.
//
// API (see DESIGN.md §10):
//
//	POST   /v1/jobs               submit a job (dedup via cache key)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          status + report
//	GET    /v1/jobs/{id}/timeline streamed NDJSON interval time-series
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/orgs               organization + workload catalog
//	GET    /v1/experiments        experiment registry
//	GET    /healthz, /metrics     liveness and counters
//
// SIGTERM/SIGINT drains gracefully: submissions are refused, running
// simulations quiesce at a chunk boundary, running sweeps checkpoint
// completed cells into the spool dir (resubmitting the same spec after a
// restart resumes), and the process exits once the workers finish or the
// drain timeout expires.
//
// Usage:
//
//	hvcd -addr :8077 -workers 4 -queue 64 -rate 50
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridvc/internal/buildinfo"
	"hybridvc/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "job worker pool size (<= 0 means GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-job queue depth (full queue answers 429)")
	cacheEntries := flag.Int("cache", 1024, "content-addressed result cache entries")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	cellTimeout := flag.Duration("cell-timeout", 0, "abandon a job cell attempt after this long (0 = unbounded)")
	retries := flag.Int("retries", 0, "re-run transiently failed cells up to this many times")
	backoff := flag.Duration("retry-backoff", 0, "base pause between retry attempts (default 100ms)")
	spool := flag.String("spool", "", "sweep checkpoint spool directory (default: per-process temp dir)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	version := buildinfo.Flag()
	flag.Parse()
	buildinfo.HandleFlag(version, "hvcd")

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	srv, err := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		RatePerSec:   *rate,
		RateBurst:    *burst,
		CellTimeout:  *cellTimeout,
		Retries:      *retries,
		RetryBackoff: *backoff,
		SpoolDir:     *spool,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(1)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	log.Printf("hvcd %s listening on %s", buildinfo.Version(), *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "hvcd:", err)
		os.Exit(1)
	case sig := <-sigs:
		log.Printf("hvcd: %v — draining (max %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "hvcd: shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "hvcd:", drainErr)
		os.Exit(1)
	}
	log.Printf("hvcd: drained cleanly")
}
