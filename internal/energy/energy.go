// Package energy accounts for the dynamic and static energy of the address
// translation components — the quantity the paper reduces by ~60%. The
// per-access energies are CACTI-6.5-grade constants (relative magnitudes
// matter, not absolute joules): conventional TLBs are accessed on every
// reference, while the hybrid design pays a small Bloom-filter probe per
// reference and defers the large structures past the LLC.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Component identifies one translation structure.
type Component int

// Translation components.
const (
	L1TLB Component = iota
	L2TLB
	SynonymFilter
	SynonymTLB
	DelayedTLB
	IndexCache
	SegmentTable
	SegmentCache
	PageWalk
	NestedTLB
	numComponents
)

var componentNames = [numComponents]string{
	"L1-TLB", "L2-TLB", "synonym-filter", "synonym-TLB", "delayed-TLB",
	"index-cache", "segment-table", "segment-cache", "page-walk", "nested-TLB",
}

func (c Component) String() string {
	if c < 0 || c >= numComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Components lists every component in order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Model holds per-access dynamic energy (pJ) and static power
// (pJ/cycle) for each component.
type Model struct {
	PerAccess [numComponents]float64
	Static    [numComponents]float64
}

// DefaultModel returns the default energy constants.
//
//   - The two-level data TLB dominates conventional translation energy.
//   - The synonym filter is two 1K-bit arrays: an order of magnitude
//     cheaper per probe than the L1 TLB's 64x~8B CAM-like structure.
//   - Delayed structures (delayed TLB, index cache, segment table) are
//     large but accessed only after LLC misses.
//   - A page walk's energy covers the walker state machine; the PTE
//     fetches themselves are charged as cache accesses by the MMU.
func DefaultModel() Model {
	var m Model
	m.PerAccess[L1TLB] = 4.0
	m.PerAccess[L2TLB] = 18.0
	m.PerAccess[SynonymFilter] = 0.4
	m.PerAccess[SynonymTLB] = 4.0
	m.PerAccess[DelayedTLB] = 18.0
	m.PerAccess[IndexCache] = 9.0
	m.PerAccess[SegmentTable] = 12.0
	m.PerAccess[SegmentCache] = 3.0
	m.PerAccess[PageWalk] = 30.0
	m.PerAccess[NestedTLB] = 4.0

	m.Static[L1TLB] = 0.010
	m.Static[L2TLB] = 0.040
	m.Static[SynonymFilter] = 0.002
	m.Static[SynonymTLB] = 0.010
	m.Static[DelayedTLB] = 0.040
	m.Static[IndexCache] = 0.020
	m.Static[SegmentTable] = 0.025 // low-standby-power configuration (§IV-C)
	m.Static[SegmentCache] = 0.005
	return m
}

// DelayedTLBEnergy returns the per-access energy for a delayed TLB of the
// given entry count (energy grows roughly with the square root of size).
func DelayedTLBEnergy(entries int) float64 {
	base, baseEntries := 18.0, 1024.0
	scale := 1.0
	for e := baseEntries; e < float64(entries); e *= 2 {
		scale *= 1.4
	}
	return base * scale
}

// Accumulator tallies accesses and computes energy.
type Accumulator struct {
	model    Model
	Accesses [numComponents]uint64
	// Present marks components that exist in the organization and
	// therefore leak static power.
	Present [numComponents]bool
}

// NewAccumulator creates an accumulator over the model with the given
// components present.
func NewAccumulator(m Model, present ...Component) *Accumulator {
	a := &Accumulator{model: m}
	for _, c := range present {
		a.Present[c] = true
	}
	return a
}

// Access records n accesses to component c. Components accessed are
// implicitly present.
func (a *Accumulator) Access(c Component, n uint64) {
	a.Accesses[c] += n
	a.Present[c] = true
}

// Snapshot captures the accumulator's access counts at a point in time,
// so interval collectors can compute energy deltas.
type Snapshot struct {
	Accesses [numComponents]uint64
}

// Snapshot freezes the current access counts.
func (a *Accumulator) Snapshot() Snapshot {
	return Snapshot{Accesses: a.Accesses}
}

// DynamicSince returns the dynamic energy (pJ) spent since the snapshot
// was taken.
func (a *Accumulator) DynamicSince(s Snapshot) float64 {
	var e float64
	for c := 0; c < int(numComponents); c++ {
		e += float64(a.Accesses[c]-s.Accesses[c]) * a.model.PerAccess[c]
	}
	return e
}

// Dynamic returns total dynamic energy in pJ.
func (a *Accumulator) Dynamic() float64 {
	var e float64
	for c := 0; c < int(numComponents); c++ {
		e += float64(a.Accesses[c]) * a.model.PerAccess[c]
	}
	return e
}

// StaticOver returns leakage energy in pJ over the given cycles.
func (a *Accumulator) StaticOver(cycles uint64) float64 {
	var p float64
	for c := 0; c < int(numComponents); c++ {
		if a.Present[c] {
			p += a.model.Static[c]
		}
	}
	return p * float64(cycles)
}

// Total returns dynamic + static energy in pJ over the given cycles.
func (a *Accumulator) Total(cycles uint64) float64 {
	return a.Dynamic() + a.StaticOver(cycles)
}

// Breakdown renders per-component dynamic energy, largest first.
func (a *Accumulator) Breakdown() string {
	type row struct {
		c Component
		e float64
	}
	var rows []row
	for c := 0; c < int(numComponents); c++ {
		if e := float64(a.Accesses[c]) * a.model.PerAccess[c]; e > 0 {
			rows = append(rows, row{Component(c), e})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e > rows[j].e })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.0f pJ (%d accesses)\n", r.c, r.e, a.Accesses[r.c])
	}
	return b.String()
}
