// Reservation-based allocation (Section IV-B): eager allocation keeps
// segments few but wastes untouched memory (Table III shows up to 75%
// waste); demand paging wastes nothing but destroys the contiguity
// segments need. Reservations split the difference — the physical extent
// is reserved contiguously up front, and 2 MiB chunks are promoted into
// segments only on first touch, with adjacent promoted chunks merging.
//
// This example walks a sparse-then-dense usage pattern and shows the
// segment count and utilization at each stage.
package main

import (
	"fmt"
	"log"

	"hybridvc/internal/addr"
	"hybridvc/internal/osmodel"
)

func main() {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 4 << 30})
	p, err := k.NewProcess()
	if err != nil {
		log.Fatal(err)
	}

	const chunks = 32
	const chunkBytes = osmodel.ReserveChunkPages * addr.PageSize
	va, err := p.MmapReserved(chunks*chunkBytes, addr.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reserved %d MiB at %#x: %d segments, %.0f%% promoted\n",
		chunks*chunkBytes>>20, uint64(va),
		k.SegMgr.Table.Used(), 100*p.ReservedUtilization())

	// Phase 1: sparse use — every fourth chunk.
	for ci := 0; ci < chunks; ci += 4 {
		p.HandleFault(va+addr.VA(uint64(ci)*chunkBytes), false)
	}
	fmt.Printf("after sparse touches (every 4th chunk): %d segments, %.0f%% promoted\n",
		k.SegMgr.Table.Used(), 100*p.ReservedUtilization())

	// Phase 2: the application grows into the whole reservation; adjacent
	// promotions merge, converging to a single segment.
	for ci := 0; ci < chunks; ci++ {
		p.HandleFault(va+addr.VA(uint64(ci)*chunkBytes), false)
	}
	fmt.Printf("after full growth: %d segment(s), %.0f%% promoted\n",
		k.SegMgr.Table.Used(), 100*p.ReservedUtilization())

	seg, _ := k.SegMgr.LookupSoft(p.ASID, va)
	fmt.Printf("final segment covers %d MiB contiguously (%v)\n",
		seg.Length>>20, seg)

	// Contrast: plain eager allocation would have used the whole extent
	// (and reported it used) from the start.
	p2, _ := k.NewProcess()
	va2, _ := p2.Mmap(chunks*chunkBytes, addr.PermRW, osmodel.MmapOpts{})
	r2 := p2.FindRegion(va2)
	fmt.Printf("\neager equivalent: %d segment immediately, utilization counted only on touch\n",
		len(r2.Segments))
}
