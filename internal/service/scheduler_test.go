package service

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestColdKeyCacheHit exercises the second dedup layer: when the original
// job has aged out of the dedup index, an identical submission must still
// be served byte-for-byte from the content-addressed result cache — as a
// job born done, with its recorded timeline replayable and no new
// simulation executed.
func TestColdKeyCacheHit(t *testing.T) {
	srv, err := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	spec := JobSpec{Instructions: 50_000, Seed: 5}
	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-first.Job.Done()
	st1 := first.Job.Status()
	if st1.State != StateDone {
		t.Fatalf("first job %s (%s)", st1.State, st1.Error)
	}

	// Age the job out of the dedup index; the result cache still holds it.
	srv.mu.Lock()
	delete(srv.byKey, first.Job.Key)
	srv.mu.Unlock()

	second, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Fresh {
		t.Fatal("cold-key resubmission was scheduled instead of cache-served")
	}
	if second.Job.ID == first.Job.ID {
		t.Fatal("cold-key path returned the evicted job instead of a new one")
	}
	<-second.Job.Done()
	st2 := second.Job.Status()
	if !st2.Cached || st2.State != StateDone {
		t.Errorf("cache-served job = %s cached=%v", st2.State, st2.Cached)
	}
	if !bytes.Equal(st1.Report, st2.Report) {
		t.Errorf("cache-served report differs:\n%s\nvs\n%s", st1.Report, st2.Report)
	}
	if st1.Intervals == 0 || st2.Intervals != st1.Intervals {
		t.Errorf("cached timeline has %d intervals, original %d", st2.Intervals, st1.Intervals)
	}
	if n := srv.met.simulated.Load(); n != 1 {
		t.Errorf("simulated = %d, want 1", n)
	}
}
