package service

import (
	"fmt"
	"testing"
	"time"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", &cacheEntry{reportJSON: []byte("A")})
	c.put("b", &cacheEntry{reportJSON: []byte("B")})
	if _, ok := c.get("a"); !ok { // promote a → b is now LRU
		t.Fatal("a missing before eviction")
	}
	c.put("c", &cacheEntry{reportJSON: []byte("C")})
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// hits: a, a, c; misses: b (evicted) — get("b") after eviction.
	if h, m := c.hits.Load(), c.misses.Load(); h != 3 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", h, m)
	}
}

func TestResultCacheOverwrite(t *testing.T) {
	c := newResultCache(4)
	c.put("k", &cacheEntry{reportJSON: []byte("old")})
	c.put("k", &cacheEntry{reportJSON: []byte("new")})
	e, ok := c.get("k")
	if !ok || string(e.reportJSON) != "new" {
		t.Errorf("get after overwrite = %v, %v", e, ok)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

// TestRateLimiterBucket drives the token bucket through a fake clock:
// burst tokens up front, then exactly rate tokens per second, per client.
func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(2, 3) // 2/sec, burst 3
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !l.allow("alice") {
			t.Fatalf("burst submission %d refused", i)
		}
	}
	if l.allow("alice") {
		t.Error("submission beyond burst allowed")
	}
	if !l.allow("bob") {
		t.Error("independent client throttled by alice's bucket")
	}

	now = now.Add(500 * time.Millisecond) // refills 1 token at 2/sec
	if !l.allow("alice") {
		t.Error("refilled token refused")
	}
	if l.allow("alice") {
		t.Error("second token allowed after a 1-token refill")
	}

	if ra := l.retryAfter(); ra != 1 {
		t.Errorf("retryAfter = %d, want 1", ra)
	}
}

func TestRateLimiterDisabledAndPrune(t *testing.T) {
	if !newRateLimiter(0, 1).allow("anyone") {
		t.Error("zero rate must disable limiting")
	}

	l := newRateLimiter(1000, 1)
	now := time.Unix(2000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	now = now.Add(time.Second) // every bucket refills to full
	l.allow("one-more")
	if n := len(l.clients); n > maxClients {
		t.Errorf("bucket map grew past maxClients: %d", n)
	}
}
