package cache

import (
	"fmt"

	"hybridvc/internal/addr"
	"hybridvc/internal/stats"
)

// HierarchyConfig describes the full on-chip hierarchy: per-core private
// L1I/L1D/L2 and a shared, inclusive LLC (Table IV of the paper).
type HierarchyConfig struct {
	NumCores int
	L1I      Config
	L1D      Config
	L2       Config
	LLC      Config
}

// DefaultHierarchyConfig returns the paper's Table IV hierarchy for n cores:
// 32 KiB 4-way L1 I/D (2/4 cycles), 256 KiB 8-way L2 (6 cycles), and a
// shared 2 MiB 16-way LLC (27 cycles).
func DefaultHierarchyConfig(n int) HierarchyConfig {
	return HierarchyConfig{
		NumCores: n,
		L1I:      Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, HitLatency: 2},
		L1D:      Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, HitLatency: 4},
		L2:       Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, HitLatency: 6},
		LLC:      Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, HitLatency: 27},
	}
}

// AccessKind distinguishes the three reference types.
type AccessKind uint8

const (
	// Read is a data load.
	Read AccessKind = iota
	// Write is a data store.
	Write
	// Fetch is an instruction fetch.
	Fetch
)

// AccessResult reports the outcome of one hierarchy access.
type AccessResult struct {
	// Latency is the total cycles spent in the hierarchy (excluding DRAM,
	// which the caller adds after delayed translation on an LLC miss).
	Latency uint64
	// LLCMiss reports that the block had to come from memory.
	LLCMiss bool
	// HitLevel is 1, 2, or 3 for the level that supplied the block, or 0
	// on an LLC miss.
	HitLevel int
	// Perm is the permission recorded on the accessed line.
	Perm addr.Perm
	// Writebacks lists dirty blocks evicted from the LLC to memory by this
	// access; virtual names among them need delayed translation.
	Writebacks []addr.Name
}

// Hierarchy is the multi-core cache hierarchy with MESI coherence between
// private caches, inclusive of the shared LLC.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i []*Cache
	l1d []*Cache
	l2  []*Cache
	llc *Cache

	// CoherenceInvals counts remote-copy invalidations caused by writes.
	CoherenceInvals stats.Counter
	// CoherenceDowngrades counts remote M/E copies downgraded by reads.
	CoherenceDowngrades stats.Counter
	// BackInvals counts inclusive back-invalidations from LLC evictions.
	BackInvals stats.Counter
	// MemWritebacks counts dirty lines written back to memory.
	MemWritebacks stats.Counter

	// wbScratch backs AccessScratch results so the batched hot path does
	// not allocate a Writebacks slice per reference.
	wbScratch []addr.Name

	// payloads maps metadata block names (Kind != PayloadData) resident
	// in the LLC to their one-word payloads; payloadListener is notified
	// when such a block is evicted or flushed.
	payloads        *payloadTable
	payloadListener PayloadListener
}

// NewHierarchy builds the hierarchy. It panics for a non-positive core
// count; the topology is fixed per experiment.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.NumCores <= 0 {
		panic(fmt.Sprintf("cache: invalid core count %d", cfg.NumCores))
	}
	h := &Hierarchy{cfg: cfg, llc: New(cfg.LLC), payloads: newPayloadTable()}
	for i := 0; i < cfg.NumCores; i++ {
		ic, dc, l2 := cfg.L1I, cfg.L1D, cfg.L2
		ic.Name = fmt.Sprintf("%s[%d]", ic.Name, i)
		dc.Name = fmt.Sprintf("%s[%d]", dc.Name, i)
		l2.Name = fmt.Sprintf("%s[%d]", l2.Name, i)
		h.l1i = append(h.l1i, New(ic))
		h.l1d = append(h.l1d, New(dc))
		h.l2 = append(h.l2, New(l2))
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// NumCores returns the configured core count.
func (h *Hierarchy) NumCores() int { return h.cfg.NumCores }

// L1I returns core i's instruction cache (for statistics).
func (h *Hierarchy) L1I(i int) *Cache { return h.l1i[i] }

// L1D returns core i's data cache (for statistics).
func (h *Hierarchy) L1D(i int) *Cache { return h.l1d[i] }

// L2 returns core i's private L2 (for statistics).
func (h *Hierarchy) L2(i int) *Cache { return h.l2[i] }

// LLC returns the shared last-level cache (for statistics).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Access performs one reference by core for the line named n with the given
// permission to record on fills. It implements the full coherent access
// path and returns the latency and miss outcome. Writebacks, when any, are
// freshly allocated.
func (h *Hierarchy) Access(core int, kind AccessKind, n addr.Name, perm addr.Perm) AccessResult {
	return h.access(core, kind, n, perm, nil)
}

// AccessScratch is Access with the Writebacks slice backed by a
// hierarchy-owned buffer, so steady-state accesses allocate nothing. The
// returned Writebacks alias that buffer: the caller must consume them
// before the next AccessScratch (or PhysAccess in scratch mode) call.
func (h *Hierarchy) AccessScratch(core int, kind AccessKind, n addr.Name, perm addr.Perm) AccessResult {
	res := h.access(core, kind, n, perm, h.wbScratch[:0])
	h.wbScratch = res.Writebacks
	return res
}

// TouchSets reads the tag ways of the sets a (core, kind, n) access will
// scan — the proper L1, the private L2, and the LLC — without changing any
// simulated state (no LRU, no statistics). The batched engine calls it for
// a block of decoded lanes before dispatching them serially, overlapping
// the host-memory latency of the tag fetches; results are byte-identical
// with or without the touches. The returned checksum keeps the loads live.
func (h *Hierarchy) TouchSets(core int, kind AccessKind, n addr.Name) uint64 {
	l1 := h.l1d[core]
	if kind == Fetch {
		l1 = h.l1i[core]
	}
	return l1.TouchSet(n) + h.l2[core].TouchSet(n) + h.llc.TouchSet(n)
}

// access is the shared body; wb seeds res.Writebacks (nil to allocate).
func (h *Hierarchy) access(core int, kind AccessKind, n addr.Name, perm addr.Perm, wb []addr.Name) AccessResult {
	l1 := h.l1d[core]
	if kind == Fetch {
		l1 = h.l1i[core]
	}
	res := AccessResult{Latency: l1.Config().HitLatency, Writebacks: wb}

	if l := l1.Access(n); l != nil {
		res.HitLevel = 1
		res.Perm = l.Perm
		if kind == Write {
			if l.State == Shared {
				// Upgrade: invalidate every remote copy.
				h.invalidateRemote(core, n)
			}
			l.State = Modified
			h.syncL2Dirty(core, n)
		}
		return res
	}

	res.Latency += h.l2[core].Config().HitLatency
	if l := h.l2[core].Access(n); l != nil {
		res.HitLevel = 2
		res.Perm = l.Perm
		st := l.State
		if kind == Write {
			if st == Shared {
				h.invalidateRemote(core, n)
			}
			st = Modified
			l.State = Modified
		}
		h.fillL1(core, kind, n, st, l.Perm, &res)
		return res
	}

	// Miss in the private caches: snoop the other cores before the LLC.
	remoteState := h.snoop(core, n, kind == Write)

	res.Latency += h.llc.Config().HitLatency
	llcState := Exclusive
	if kind == Write {
		llcState = Modified
	}
	// Nothing touches the LLC between its lookup and its fill-on-miss, so
	// the fused AccessFill (one set scan) is byte-identical to the pair.
	if l, v, ok := h.llc.AccessFill(n, llcState, perm); l != nil {
		res.HitLevel = 3
		res.Perm = l.Perm
		h.fillPrivate(core, kind, n, remoteState, l.Perm, &res)
		return res
	} else if ok {
		h.backInvalidate(v.Name, &res)
		if v.Dirty {
			res.Writebacks = append(res.Writebacks, v.Name)
			h.MemWritebacks.Inc()
		}
	}

	// LLC miss: the caller performs delayed translation + DRAM, then the
	// block fills bottom-up. Record the fill now.
	res.LLCMiss = true
	res.Perm = perm
	h.fillPrivate(core, kind, n, remoteState, perm, &res)
	return res
}

// invalidateRemote invalidates every remote copy of n (a write upgrade).
func (h *Hierarchy) invalidateRemote(core int, n addr.Name) {
	h.snoop(core, n, true)
}

// snoop probes all remote private caches for n. For writes it invalidates
// remote copies; for reads it downgrades M/E copies to Shared. It returns
// Shared if any remote copy remains, else Invalid.
func (h *Hierarchy) snoop(core int, n addr.Name, isWrite bool) State {
	remote := Invalid
	for c := 0; c < h.cfg.NumCores; c++ {
		if c == core {
			continue
		}
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			l := pc.Probe(n)
			if l == nil {
				continue
			}
			perm, state := l.Perm, l.State
			if isWrite {
				if dirty, _ := pc.Invalidate(n); dirty {
					// Dirty data is forwarded; it lives on in the LLC.
					h.llcAbsorbDirty(n, perm)
				}
				h.CoherenceInvals.Inc()
			} else {
				if state == Modified || state == Exclusive {
					if pc.Downgrade(n) {
						h.llcAbsorbDirty(n, perm)
					}
					h.CoherenceDowngrades.Inc()
				}
				remote = Shared
			}
		}
	}
	return remote
}

// llcAbsorbDirty records that dirty remote data was pushed into the LLC.
func (h *Hierarchy) llcAbsorbDirty(n addr.Name, perm addr.Perm) {
	if l := h.llc.Probe(n); l != nil {
		l.State = Modified
		return
	}
	// Not in the LLC: fill it, preserving inclusion for the victim.
	if v, ok := h.llc.Fill(n, Modified, perm); ok {
		h.backInvalidate(v.Name, nil)
		if v.Dirty {
			h.MemWritebacks.Inc()
		}
	}
}

// fillPrivate installs n into core's L2 and L1 after an LLC hit or fill.
func (h *Hierarchy) fillPrivate(core int, kind AccessKind, n addr.Name, remote State, perm addr.Perm, res *AccessResult) {
	st := Exclusive
	if remote == Shared {
		st = Shared
	}
	if kind == Write {
		st = Modified
	}
	if v, ok := h.l2[core].Fill(n, st, perm); ok {
		h.handleL2Victim(core, v)
	}
	h.fillL1(core, kind, n, st, perm, res)
	if kind == Write {
		// The LLC's copy is now stale relative to the private M copy; mark
		// the LLC line dirty so the eventual eviction writes back.
		if l := h.llc.Probe(n); l != nil {
			l.State = Modified
		}
	}
}

// fillL1 installs n into the proper L1.
func (h *Hierarchy) fillL1(core int, kind AccessKind, n addr.Name, st State, perm addr.Perm, _ *AccessResult) {
	l1 := h.l1d[core]
	if kind == Fetch {
		l1 = h.l1i[core]
		st = Shared // instruction lines are never written
	}
	if v, ok := l1.Fill(n, st, perm); ok && v.Dirty {
		// Dirty L1 victim merges into L2 (and is dirty there).
		if l := h.l2[core].Probe(v.Name); l != nil {
			l.State = Modified
		} else if lv, evicted := h.l2[core].Fill(v.Name, Modified, perm); evicted {
			h.handleL2Victim(core, lv)
		}
	}
}

// handleL2Victim pushes a private L2 victim down: dirty data merges into the
// LLC; L1 copies are back-invalidated to preserve L2⊇L1 inclusion.
func (h *Hierarchy) handleL2Victim(core int, v Victim) {
	for _, pc := range []*Cache{h.l1d[core], h.l1i[core]} {
		if dirty, present := pc.Invalidate(v.Name); present {
			h.BackInvals.Inc()
			if dirty {
				v.Dirty = true
			}
		}
	}
	if v.Dirty {
		h.llcAbsorbDirty(v.Name, addr.PermRW)
	}
}

// backInvalidate removes an LLC victim from every private cache (inclusive
// LLC), folding any dirtier private copy into the writeback. res may be
// nil when the caller has no use for the writeback name (dirty absorption,
// where the data lives on in the LLC). Metadata victims additionally drop
// their payload entry and notify the owner — the eviction half of the
// payload residency contract.
func (h *Hierarchy) backInvalidate(n addr.Name, res *AccessResult) {
	if n.Kind != addr.PayloadData {
		h.evictPayload(n)
	}
	dirty := false
	for c := 0; c < h.cfg.NumCores; c++ {
		// Inclusion (L2 ⊇ L1d ∪ L1i, maintained by handleL2Victim) lets
		// the L2 probe gate the L1 probes: a block absent from a core's
		// L2 cannot be in either of its L1s, so most victims cost one
		// set scan per core instead of three.
		d2, present := h.l2[c].Invalidate(n)
		if !present {
			continue
		}
		h.BackInvals.Inc()
		dirty = dirty || d2
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c]} {
			if d, p := pc.Invalidate(n); p {
				h.BackInvals.Inc()
				dirty = dirty || d
			}
		}
	}
	if dirty {
		if res != nil {
			res.Writebacks = append(res.Writebacks, n)
		}
		h.MemWritebacks.Inc()
	}
}

// syncL2Dirty marks core's L2 copy dirty after an L1 write hit, keeping the
// write-back hierarchy conservative (the L2 will write back on eviction).
func (h *Hierarchy) syncL2Dirty(core int, n addr.Name) {
	if l := h.l2[core].Probe(n); l != nil {
		l.State = Modified
	}
	if l := h.llc.Probe(n); l != nil {
		l.State = Modified
	}
}

// FlushPage invalidates all lines of the given page everywhere, returning
// counts; dirty lines are counted as memory writebacks. The OS uses this on
// remaps and on non-synonym -> synonym status changes.
func (h *Hierarchy) FlushPage(page addr.Name) (flushed, dirty int) {
	for c := 0; c < h.cfg.NumCores; c++ {
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			f, d := pc.FlushPage(page)
			flushed += f
			dirty += d
		}
	}
	f, d := h.llc.FlushPage(page)
	flushed += f
	dirty += d
	h.MemWritebacks.Add(uint64(dirty))
	return flushed, dirty
}

// SetPagePerm updates permission bits on all cached copies of a page
// (Section III-D r/o content sharing).
func (h *Hierarchy) SetPagePerm(page addr.Name, perm addr.Perm) (updated int) {
	for c := 0; c < h.cfg.NumCores; c++ {
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			updated += pc.SetPagePerm(page, perm)
		}
	}
	updated += h.llc.SetPagePerm(page, perm)
	return updated
}

// FlushASID removes every line belonging to the address space (used when an
// address space is destroyed and its ASID recycled). Metadata blocks are
// virtually named, so the match catches them too; their payload entries are
// swept afterwards with the usual eviction notification.
func (h *Hierarchy) FlushASID(asid addr.ASID) (flushed int) {
	match := func(n addr.Name) bool { return !n.Synonym && n.ASID == asid }
	for c := 0; c < h.cfg.NumCores; c++ {
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			f, _ := pc.FlushMatching(match)
			flushed += f
		}
	}
	f, _ := h.llc.FlushMatching(match)
	h.flushPayloadASID(asid)
	return flushed + f
}

// flushPayloadASID drops (with notification) every payload entry whose
// block belongs to the address space. The two-pass shape keeps the table
// iteration free of concurrent mutation.
func (h *Hierarchy) flushPayloadASID(asid addr.ASID) {
	var doomed []uint64
	h.payloads.forEach(func(k, _ uint64) {
		if n := addr.NameFromKey(k); !n.Synonym && n.ASID == asid {
			doomed = append(doomed, k)
		}
	})
	for _, k := range doomed {
		h.evictPayload(addr.NameFromKey(k))
	}
}

// CheckInvariants verifies structural invariants and returns an error
// describing the first violation: single-name uniqueness cannot be checked
// here (it needs the OS mapping), but MESI exclusivity and L2⊇L1 inclusion
// can.
func (h *Hierarchy) CheckInvariants() error {
	// A Modified or Exclusive line in one core's private caches must not
	// coexist with any copy in another core's private caches.
	type holder struct {
		core  int
		state State
	}
	holders := make(map[addr.Name][]holder)
	for c := 0; c < h.cfg.NumCores; c++ {
		for _, pc := range []*Cache{h.l1d[c], h.l1i[c], h.l2[c]} {
			core := c
			pc.ForEachLine(func(n addr.Name, l *Line) {
				holders[n] = append(holders[n], holder{core, l.State})
			})
		}
	}
	for n, hs := range holders {
		cores := make(map[int]bool)
		exclusive := false
		for _, x := range hs {
			cores[x.core] = true
			if x.state == Modified || x.state == Exclusive {
				exclusive = true
			}
		}
		if exclusive && len(cores) > 1 {
			return fmt.Errorf("cache: %v held M/E while %d cores hold copies", n, len(cores))
		}
	}
	// Inclusion: every private line must be present in the LLC.
	for n := range holders {
		if h.llc.Probe(n) == nil {
			return fmt.Errorf("cache: %v cached privately but absent from LLC", n)
		}
	}
	// Metadata payloads must mirror LLC residency exactly.
	return h.checkPayloadResidency()
}
