package osmodel

import (
	"testing"

	"hybridvc/internal/addr"
)

func TestMunmapEagerRegion(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	free0 := k.Alloc.FreeFrames()
	p, _ := k.NewProcess()
	va, _ := p.Mmap(16*addr.PageSize, addr.PermRW, MmapOpts{})
	used := k.Alloc.FreeFrames()
	if used == free0 {
		t.Fatal("mmap allocated nothing")
	}
	if err := k.Munmap(p, va); err != nil {
		t.Fatal(err)
	}
	// Pages unmapped, segments freed, frames returned (page tables keep
	// their intermediate frames, which Exit reclaims).
	if _, ok := p.PT.Lookup(va); ok {
		t.Error("page survived munmap")
	}
	if k.SegMgr.Table.Used() != 0 {
		t.Error("segment leaked")
	}
	if len(sink.flushedPages) != 16 || len(sink.shootdowns) != 16 {
		t.Errorf("flushes=%d shootdowns=%d, want 16,16",
			len(sink.flushedPages), len(sink.shootdowns))
	}
	if p.FindRegion(va) != nil {
		t.Error("region still registered")
	}
	// The freed VA must not be reported as a valid fault target.
	if p.HandleFault(va, false) {
		t.Error("fault on unmapped region accepted")
	}
	if err := k.Munmap(p, va); err == nil {
		t.Error("double munmap succeeded")
	}
}

func TestMunmapDemandRegionFreesTouchedFrames(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	free0 := k.Alloc.FreeFrames()
	va, _ := p.Mmap(16*addr.PageSize, addr.PermRW, MmapOpts{Demand: true})
	// Touch 4 of 16 pages.
	for i := 0; i < 4; i++ {
		p.HandleFault(va+addr.VA(i*addr.PageSize), false)
	}
	if err := k.Munmap(p, va); err != nil {
		t.Fatal(err)
	}
	// Page-table intermediate frames remain until Exit; data frames and
	// the untouched tail cost nothing.
	leaked := free0 - k.Alloc.FreeFrames()
	if leaked > 3 { // at most the PT intermediate pages
		t.Errorf("leaked %d frames", leaked)
	}
}

func TestMunmapHugeRegion(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	p, _ := k.NewProcess()
	va, err := p.Mmap(4<<20, addr.PermRW, MmapOpts{HugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Munmap(p, va); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PT.Lookup(va); ok {
		t.Error("huge mapping survived")
	}
	if _, ok := p.PT.Lookup(va + addr.HugePageSize); ok {
		t.Error("second huge mapping survived")
	}
	// One flush+shootdown per 2 MiB mapping, not per 4 KiB page.
	if len(sink.shootdowns) != 2 {
		t.Errorf("shootdowns = %d, want 2", len(sink.shootdowns))
	}
	if k.SegMgr.Table.Used() != 0 {
		t.Error("segment leaked")
	}
}

func TestMunmapReservedRegion(t *testing.T) {
	k := newKernel(t)
	free0 := k.Alloc.FreeFrames()
	p, _ := k.NewProcess()
	va, _ := p.MmapReserved(4*chunkBytes, addr.PermRW)
	p.HandleFault(va, false)
	p.HandleFault(va+2*chunkBytes, false)
	if err := k.Munmap(p, va); err != nil {
		t.Fatal(err)
	}
	// Only page-table frames (reclaimed at Exit) may remain outstanding.
	leaked := int(free0 - k.Alloc.FreeFrames())
	if leaked > p.PT.FramesUsed {
		t.Errorf("leaked %d frames beyond the %d table frames", leaked, p.PT.FramesUsed)
	}
	if k.SegMgr.Table.Used() != 0 {
		t.Error("promoted segments leaked")
	}
}

func TestExitFlushesASID(t *testing.T) {
	k := newKernel(t)
	sink := &recordingSink{}
	k.AttachSink(sink)
	p, _ := k.NewProcess()
	asid := p.ASID
	p.Mmap(addr.PageSize, addr.PermRW, MmapOpts{})
	k.Exit(p)
	found := false
	for _, a := range sink.flushedASIDs {
		if a == asid {
			found = true
		}
	}
	if !found {
		t.Error("Exit did not flush the ASID")
	}
}

func TestSharedExtentRefcounting(t *testing.T) {
	k := newKernel(t)
	free0 := k.Alloc.FreeFrames()
	p1, _ := k.NewProcess()
	p2, _ := k.NewProcess()
	vas, err := k.ShareAnonymous([]*Process{p1, p2}, 16*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Unmapping one process's view keeps the frames alive for the other.
	if err := k.Munmap(p1, vas[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.PT.Translate(vas[1]); !ok {
		t.Fatal("second mapping broken by first unmap")
	}
	// Exiting the second process drops the last reference.
	k.Exit(p2)
	k.Exit(p1)
	if k.Alloc.FreeFrames() != free0 {
		t.Errorf("shared frames leaked: %d -> %d", free0, k.Alloc.FreeFrames())
	}
}

func TestSharedExtentDoubleUnmapSafe(t *testing.T) {
	k := newKernel(t)
	p, _ := k.NewProcess()
	vas, _ := k.ShareAnonymous([]*Process{p}, 8*addr.PageSize)
	if err := k.Munmap(p, vas[0]); err != nil {
		t.Fatal(err)
	}
	// The extent is gone; a second release via Exit must not double-free.
	k.Exit(p)
}
