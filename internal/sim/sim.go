// Package sim is the top-level simulator harness: it drives one OoO-lite
// timing core per hardware core, feeding each from a workload generator
// (with round-robin timeslicing when a workload has more processes than
// cores), routes every reference through the configured memory system, and
// collects the performance and energy statistics the experiments report.
package sim

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/cpu"
	"hybridvc/internal/energy"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// CPU is the timing core configuration.
	CPU cpu.Config
	// FetchEvery issues one instruction-fetch line access per this many
	// instructions (64 B lines hold a handful of x86 instructions).
	FetchEvery int
	// Timeslice is the context-switch interval in instructions when a
	// core multiplexes several processes.
	Timeslice uint64
	// Interleave is the per-core chunk size of the round-robin
	// interleaving between cores.
	Interleave int
	// Interval enables the time-series collector: one stats.Interval is
	// recorded every Interval retired instructions (summed over cores).
	// 0 (the default) disables collection; the run then attaches no probe
	// and the hot path stays allocation-free.
	Interval uint64
	// Workers selects the run loop. 1 forces the serial loop; 0 (auto) and
	// every other value enable the per-core parallel loop — one goroutine
	// per simulated core over private chunk lanes, plan and access phases
	// serialized in fixed core order by a token ring — whenever more than
	// one core has work and no interval collector needs run-loop
	// quiescence. Reports are byte-identical either way: the parallel loop
	// performs every shared-state operation in exactly the serial order,
	// only each core's private retire phase overlaps the ring.
	Workers int
}

// DefaultConfig returns the standard run configuration.
func DefaultConfig() Config {
	return Config{
		CPU:        cpu.DefaultConfig(),
		FetchEvery: 8,
		Timeslice:  50_000,
		Interleave: 128,
	}
}

// Simulator drives one memory system with a set of workload generators.
type Simulator struct {
	cfg    Config
	memsys core.MemSystem
	cores  []*cpu.Core
	// perCore[i] lists the generators multiplexed on core i.
	perCore   [][]*workload.Generator
	active    []int
	sliceLeft []uint64
	fetchOff  []uint64

	// l1iHitLat is the L1I hit latency, hoisted out of the per-reference
	// loop (fetches slower than this stall the front end).
	l1iHitLat uint64

	// lanes[c] holds core c's private chunk buffers of the batched access
	// path: each Interleave-sized chunk is decoded into the plans lane and
	// its references gathered into reqs, executed in one AccessBatch call
	// into results, and then retired against the timing core. Private
	// lanes let the parallel run loop overlap one core's retire with the
	// next core's plan/access without copying.
	lanes []chunkLanes

	// ContextSwitches counts generator switches (filter reloads happen
	// via the OS on real switches; here we count them for energy).
	ContextSwitches stats.Counter
	// Retired counts instructions per core.
	Retired []uint64

	// stop is set asynchronously by Stop (e.g. from a signal handler);
	// the run loop checks it between chunk rounds, so the simulator
	// always quiesces at an access boundary with consistent statistics.
	stop        atomic.Bool
	interrupted bool

	// Interval time-series state (cfg.Interval > 0 only). The collector
	// probe is attached for the duration of Run and detached afterwards,
	// restoring whatever probe the caller had installed.
	collector    *intervalCollector
	timeline     *stats.Timeline
	prevCounts   core.CountingProbe
	prevEnergy   energy.Snapshot
	prevCycles   uint64
	prevInsns    uint64
	nextBoundary uint64
	intervalIdx  int
}

// intervalCollector counts pipeline events for the current window and
// accumulates the walk-depth distribution (page-walk steps and delayed
// index-tree probe depths share one histogram).
type intervalCollector struct {
	core.CountingProbe
	depth *stats.Histogram
}

func (c *intervalCollector) Walk(ev pipeline.WalkEvent) {
	c.CountingProbe.Walk(ev)
	c.depth.Observe(uint64(ev.Steps))
}

func (c *intervalCollector) Delayed(ev pipeline.DelayedEvent) {
	c.CountingProbe.Delayed(ev)
	c.depth.Observe(uint64(ev.Depth))
}

// stepPlan records the decode of one planned instruction so the replay
// phase can retire it against the batched memory results.
type stepPlan struct {
	// fetch and mem index the chunk's request/result slices; -1 = absent.
	fetch, mem    int32
	isStore       bool
	dependsOnPrev bool
	mispredict    bool
}

// chunkLanes are one core's reusable structure-of-arrays chunk buffers.
type chunkLanes struct {
	plans   []stepPlan
	reqs    []core.Request
	results []core.Result
}

// New creates a simulator. Generators are distributed round-robin over the
// memory system's cores; it panics when no generators are supplied.
func New(cfg Config, ms core.MemSystem, gens []*workload.Generator) *Simulator {
	if len(gens) == 0 {
		panic("sim: no workload generators")
	}
	if cfg.FetchEvery <= 0 {
		cfg.FetchEvery = 8
	}
	if cfg.Interleave <= 0 {
		cfg.Interleave = 128
	}
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 50_000
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	n := ms.Hierarchy().NumCores()
	s := &Simulator{
		cfg:       cfg,
		memsys:    ms,
		perCore:   make([][]*workload.Generator, n),
		active:    make([]int, n),
		sliceLeft: make([]uint64, n),
		fetchOff:  make([]uint64, n),
		Retired:   make([]uint64, n),
		lanes:     make([]chunkLanes, n),
	}
	for i, g := range gens {
		c := i % n
		s.perCore[c] = append(s.perCore[c], g)
	}
	for i := 0; i < n; i++ {
		s.cores = append(s.cores, cpu.New(cfg.CPU))
		s.sliceLeft[i] = cfg.Timeslice
	}
	s.l1iHitLat = ms.Hierarchy().Config().L1I.HitLatency
	if cfg.Interval > 0 {
		s.collector = &intervalCollector{
			depth: stats.NewHistogram(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
		}
		s.timeline = &stats.Timeline{}
		s.nextBoundary = cfg.Interval
	}
	return s
}

// Timeline returns the interval time-series, or nil when cfg.Interval is
// 0. It is safe to read concurrently with Run (live metrics endpoints).
func (s *Simulator) Timeline() *stats.Timeline { return s.timeline }

// totalRetired sums retired instructions over cores.
func (s *Simulator) totalRetired() uint64 {
	var n uint64
	for _, r := range s.Retired {
		n += r
	}
	return n
}

// maxCycles returns the slowest active core's cycle count — the same
// quantity Report.Cycles reports, so interval cycle deltas telescope to
// the final report exactly.
func (s *Simulator) maxCycles() uint64 {
	var m uint64
	for c, cc := range s.cores {
		if len(s.perCore[c]) == 0 {
			continue
		}
		if cc.Cycles() > m {
			m = cc.Cycles()
		}
	}
	return m
}

// flushInterval closes the current window: every Interval field is the
// delta since the previous flush, so per-field sums over all intervals
// reproduce the end-of-run totals.
func (s *Simulator) flushInterval() {
	cur := s.collector.CountingProbe
	prev := s.prevCounts
	insns := s.totalRetired()
	cycles := s.maxCycles()

	iv := stats.Interval{
		Index:      s.intervalIdx,
		StartInsns: s.prevInsns,
		EndInsns:   insns,
		Insns:      insns - s.prevInsns,
		Cycles:     cycles - s.prevCycles,

		Refs:      cur.RouteTotal - prev.RouteTotal,
		LLCMisses: cur.LLCMisses - prev.LLCMisses,

		FilterProbes:   cur.FilterProbes - prev.FilterProbes,
		Candidates:     cur.FilterCandidates - prev.FilterCandidates,
		FalsePositives: cur.FalsePositives - prev.FalsePositives,

		Faults:  cur.Faults - prev.Faults,
		Retries: cur.Retries - prev.Retries,

		DelayedTranslations:   cur.DelayedDemand - prev.DelayedDemand,
		WritebackTranslations: cur.DelayedWritebacks - prev.DelayedWritebacks,

		DynamicEnergyPJ: s.memsys.Energy().DynamicSince(s.prevEnergy),
		WalkDepth:       s.collector.depth.Snapshot(),
	}
	for l := range iv.HitLevels {
		iv.HitLevels[l] = cur.CacheHitLevel[l] - prev.CacheHitLevel[l]
	}
	if iv.Cycles > 0 {
		iv.IPC = float64(iv.Insns) / float64(iv.Cycles)
	}
	refs := cur.CacheAccesses - prev.CacheAccesses
	l1miss := refs - iv.HitLevels[1]
	l2miss := l1miss - iv.HitLevels[2]
	iv.L1MPKI = stats.PerKilo(l1miss, iv.Insns)
	iv.L2MPKI = stats.PerKilo(l2miss, iv.Insns)
	iv.LLCMPKI = stats.PerKilo(iv.LLCMisses, iv.Insns)
	iv.FPRate = stats.Ratio(iv.FalsePositives, iv.Candidates)

	s.timeline.Append(iv)
	s.intervalIdx++
	s.prevCounts = cur
	s.prevEnergy = s.memsys.Energy().Snapshot()
	s.prevCycles = cycles
	s.prevInsns = insns
	s.collector.depth.Reset()
}

// runChunk advances core c by n instructions through the batched access
// path: plan (decode the instructions, gathering their references in
// program order), access (one AccessBatch call over the chunk), replay
// (retire each instruction against its results). The reference order is
// exactly the scalar per-step order — fetch before the data access of
// each instruction — so stateful components (DRAM open rows) see an
// identical access stream.
func (s *Simulator) runChunk(c int, n uint64) {
	if len(s.perCore[c]) == 0 || n == 0 {
		return
	}
	ln := &s.lanes[c]
	s.planChunk(c, n, ln)
	s.accessChunk(ln)
	s.retireChunk(c, ln)
}

// planChunk decodes the next n instructions of core c into its lanes:
// generator stepping, timeslice bookkeeping, and the program-order gather
// of fetch and data references. It mutates workload and OS-model state
// shared across cores (generator positions, touched-page accounting), so
// the parallel run loop serializes it in core order.
func (s *Simulator) planChunk(c int, n uint64, ln *chunkLanes) {
	gens := s.perCore[c]
	if len(gens) == 0 || n == 0 {
		ln.plans = ln.plans[:0]
		ln.reqs = ln.reqs[:0]
		return
	}
	ln.plans = ln.plans[:0]
	ln.reqs = ln.reqs[:0]
	retired := s.Retired[c]
	fetchEvery := uint64(s.cfg.FetchEvery)

	for i := uint64(0); i < n; i++ {
		g := gens[s.active[c]]

		// Timeslice bookkeeping.
		if len(gens) > 1 {
			s.sliceLeft[c]--
			if s.sliceLeft[c] == 0 {
				s.sliceLeft[c] = s.cfg.Timeslice
				s.active[c] = (s.active[c] + 1) % len(gens)
				s.ContextSwitches.Inc()
			}
		}

		p := stepPlan{fetch: -1, mem: -1}
		// Periodic instruction fetch at line granularity.
		if retired%fetchEvery == 0 {
			va := g.CodeStart + addr.VA(s.fetchOff[c]%g.CodeLen)
			s.fetchOff[c] += addr.LineSize
			p.fetch = int32(len(ln.reqs))
			ln.reqs = append(ln.reqs, core.Request{
				Core: c, Kind: cache.Fetch, VA: va, Proc: g.Proc,
			})
		}

		in := g.Next()
		p.dependsOnPrev = in.DependsOnPrev
		if in.Mispredict {
			p.mispredict = true
		} else if in.IsMem {
			kind := cache.Read
			if in.IsStore {
				kind = cache.Write
				p.isStore = true
			}
			p.mem = int32(len(ln.reqs))
			ln.reqs = append(ln.reqs, core.Request{Core: c, Kind: kind, VA: in.VA, Proc: g.Proc})
		}
		ln.plans = append(ln.plans, p)
		retired++
	}
}

// accessChunk executes a planned chunk's references against the shared
// memory system in one AccessBatch call. Order-sensitive by construction;
// the parallel run loop serializes it in core order.
func (s *Simulator) accessChunk(ln *chunkLanes) {
	if cap(ln.results) < len(ln.reqs) {
		ln.results = make([]core.Result, len(ln.reqs))
	}
	s.memsys.AccessBatch(ln.reqs, ln.results[:len(ln.reqs)])
}

// retireChunk replays a chunk's plans against core c's timing model. It
// touches only core-private state (the cpu core and Retired[c]), so the
// parallel run loop overlaps it with other cores' plan/access phases.
func (s *Simulator) retireChunk(c int, ln *chunkLanes) {
	cc := s.cores[c]
	res := ln.results[:len(ln.reqs)]
	for _, p := range ln.plans {
		if p.mispredict {
			// The fetch (if any) still ran, but a mispredicted branch's
			// front-end stall is subsumed by the flush penalty.
			cc.Mispredict()
			s.Retired[c]++
			continue
		}
		var fetchStall uint64
		if p.fetch >= 0 {
			// A fetch hitting the L1I is fully pipelined; anything slower
			// stalls the front end.
			if fl := res[p.fetch].Latency; fl > s.l1iHitLat {
				fetchStall = fl - s.l1iHitLat
			}
		}
		lat := uint64(1)
		isMem := p.mem >= 0
		if isMem && !p.isStore {
			lat = res[p.mem].Latency
		}
		// Stores retire through the store buffer; their latency is hidden
		// unless the machine backs up, which the LSQ bound models. They
		// charge a store-buffer insertion cost only (lat stays 1).
		cc.Retire(lat+fetchStall, p.dependsOnPrev, isMem)
		s.Retired[c]++
	}
}

// activeCores lists the cores with at least one generator, in core order.
func (s *Simulator) activeCores() []int {
	var act []int
	for c := range s.perCore {
		if len(s.perCore[c]) > 0 {
			act = append(act, c)
		}
	}
	return act
}

// runParallel is the per-core parallel run loop: one goroutine per active
// core, chunk lanes private to each. A token ring serializes the
// order-sensitive plan and access phases in exactly the serial loop's
// fixed core order — worker j runs plan+access only while holding the
// token, then passes it on (the last worker hands it back to the round
// driver) — so every shared-state mutation happens in the serial order
// and reports are byte-identical to Workers=1. Only the retire phase,
// which touches nothing but the core's own timing model and lanes,
// overlaps the ring. The driver checks Stop between rounds, exactly like
// the serial loop, so interruption still quiesces at a chunk boundary.
func (s *Simulator) runParallel(n uint64, act []int) {
	ilv := uint64(s.cfg.Interleave)
	rounds := n / ilv
	if n%ilv != 0 {
		rounds++
	}
	toks := make([]chan struct{}, len(act))
	for j := range toks {
		toks[j] = make(chan struct{}, 1)
	}
	ringOut := make(chan struct{}, 1)
	var wg sync.WaitGroup
	for j, c := range act {
		wg.Add(1)
		go func(j, c int) {
			defer wg.Done()
			var done uint64
			for range toks[j] {
				chunk := ilv
				if done+chunk > n {
					chunk = n - done
				}
				ln := &s.lanes[c]
				s.planChunk(c, chunk, ln)
				s.accessChunk(ln)
				// Hand the token on before retiring: the next core's
				// plan/access overlaps this core's private replay.
				if j+1 < len(act) {
					toks[j+1] <- struct{}{}
				} else {
					ringOut <- struct{}{}
				}
				s.retireChunk(c, ln)
				done += chunk
			}
		}(j, c)
	}
	for r := uint64(0); r < rounds; r++ {
		toks[0] <- struct{}{}
		<-ringOut
		if s.stop.Load() {
			s.interrupted = true
			break
		}
	}
	// Every token send of the last granted round completed before ringOut
	// was handed back, so each worker is (or will next be) blocked on its
	// empty token channel; closing releases them after any in-flight
	// retire finishes, and Wait publishes all retire state to this
	// goroutine before Report reads it.
	for _, t := range toks {
		close(t)
	}
	wg.Wait()
}

// Run executes n instructions per core, interleaving cores in chunks so
// they share the memory system roughly in lockstep. With cfg.Interval
// set, the collector probe rides along (tee'd with any probe the caller
// installed) and one stats.Interval is flushed each time total retired
// instructions cross an interval boundary, plus a final partial interval;
// the caller's probe is restored before Run returns.
//
// Unless cfg.Workers is 1, runs with more than one active core and no
// interval collector take the parallel per-core loop (see runParallel);
// its reports are byte-identical to the serial loop's.
func (s *Simulator) Run(n uint64) Report {
	if act := s.activeCores(); s.cfg.Workers != 1 && s.collector == nil && len(act) > 1 {
		s.runParallel(n, act)
		return s.Report()
	}
	var callerProbe core.Probe
	if s.collector != nil {
		callerProbe = s.memsys.Probe()
		s.memsys.SetProbe(pipeline.Tee(callerProbe, s.collector))
	}
	done := make([]uint64, len(s.cores))
	for {
		progressed := false
		for c := range s.cores {
			if len(s.perCore[c]) == 0 {
				continue
			}
			chunk := uint64(s.cfg.Interleave)
			if done[c]+chunk > n {
				chunk = n - done[c]
			}
			s.runChunk(c, chunk)
			done[c] += chunk
			if chunk > 0 {
				progressed = true
			}
		}
		if s.collector != nil {
			for s.totalRetired() >= s.nextBoundary {
				s.flushInterval()
				s.nextBoundary += s.cfg.Interval
			}
		}
		if s.stop.Load() {
			// Quiesce at the chunk boundary: every issued access has
			// retired, so the partial report and timeline are as valid as
			// a completed run's — just shorter.
			s.interrupted = true
			break
		}
		if !progressed {
			break
		}
	}
	if s.collector != nil {
		if s.totalRetired() > s.prevInsns {
			s.flushInterval()
		}
		s.memsys.SetProbe(callerProbe)
	}
	return s.Report()
}

// Report summarizes a run.
type Report struct {
	Name string `json:"name"`
	// Cycles is the slowest core's cycle count.
	Cycles uint64 `json:"cycles"`
	// Instructions is the total retired across cores.
	Instructions uint64 `json:"instructions"`
	// IPC is the aggregate instructions per (max) cycle.
	IPC float64 `json:"ipc"`
	// PerCoreIPC lists each core's IPC.
	PerCoreIPC []float64 `json:"per_core_ipc"`
	// TranslationEnergyPJ is the dynamic + static translation energy.
	TranslationEnergyPJ float64 `json:"translation_energy_pj"`
	// DynamicEnergyPJ is the dynamic translation energy alone.
	DynamicEnergyPJ float64 `json:"dynamic_energy_pj"`
	// LLCMissRate is the shared LLC local miss rate.
	LLCMissRate float64 `json:"llc_miss_rate"`
	// MemStallFraction is the fraction of cycles attributed to memory
	// (averaged over active cores).
	MemStallFraction float64 `json:"mem_stall_fraction"`
	// Interrupted marks a report flushed from a run cut short by Stop:
	// the statistics are consistent but cover fewer instructions than
	// requested.
	Interrupted bool `json:"interrupted,omitempty"`
}

// finite maps the IEEE values encoding/json rejects (NaN, ±Inf) to 0 so
// a Report is marshalable by construction.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// JSON renders the report as a JSON object. It cannot fail: Report holds
// only strings, integers and floats, and every float is sanitized to a
// finite value first (json.Marshal rejects NaN/Inf, nothing else here).
func (r Report) JSON() string {
	r.IPC = finite(r.IPC)
	r.TranslationEnergyPJ = finite(r.TranslationEnergyPJ)
	r.DynamicEnergyPJ = finite(r.DynamicEnergyPJ)
	r.LLCMissRate = finite(r.LLCMissRate)
	r.MemStallFraction = finite(r.MemStallFraction)
	ipcs := make([]float64, len(r.PerCoreIPC))
	for i, v := range r.PerCoreIPC {
		ipcs[i] = finite(v)
	}
	r.PerCoreIPC = ipcs
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Unreachable: every field type marshals and every float is finite.
		panic(fmt.Sprintf("sim: Report.JSON: %v", err))
	}
	return string(b)
}

// Stop asks the run loop to quiesce at the next chunk boundary and
// return a valid partial report. It is safe to call from another
// goroutine (typically a signal handler) at any time, including before
// Run starts or after it returned.
func (s *Simulator) Stop() { s.stop.Store(true) }

// Interrupted reports whether the last Run was cut short by Stop.
func (s *Simulator) Interrupted() bool { return s.interrupted }

// Report builds the summary for the current state.
func (s *Simulator) Report() Report {
	r := Report{Name: s.memsys.Name(), Interrupted: s.interrupted}
	for c, cc := range s.cores {
		if len(s.perCore[c]) == 0 {
			continue
		}
		if cc.Cycles() > r.Cycles {
			r.Cycles = cc.Cycles()
		}
		r.Instructions += cc.Retired()
		r.PerCoreIPC = append(r.PerCoreIPC, cc.IPC())
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	acc := s.memsys.Energy()
	r.DynamicEnergyPJ = acc.Dynamic()
	r.TranslationEnergyPJ = acc.Total(r.Cycles)
	r.LLCMissRate = s.memsys.Hierarchy().LLC().Stats.MissRate()
	var stall, cycles uint64
	for c, cc := range s.cores {
		if len(s.perCore[c]) == 0 {
			continue
		}
		stall += cc.MemStallCycles()
		cycles += cc.Cycles()
	}
	if cycles > 0 {
		r.MemStallFraction = float64(stall) / float64(cycles)
	}
	return r
}

// Cores exposes the timing cores (for detailed statistics).
func (s *Simulator) Cores() []*cpu.Core { return s.cores }

// MemSystem exposes the memory system under test.
func (s *Simulator) MemSystem() core.MemSystem { return s.memsys }

func (r Report) String() string {
	return fmt.Sprintf("%-18s cycles=%-12d IPC=%.3f xlat-energy=%.0f pJ llc-miss=%.1f%%",
		r.Name, r.Cycles, r.IPC, r.TranslationEnergyPJ, 100*r.LLCMissRate)
}
