package service

import (
	"encoding/json"
	"net/http"

	"hybridvc/internal/service/cluster"
	"hybridvc/internal/service/store"
)

// Peer result API: GET /v1/peer/results/{key} serves this node's copy
// of a content-addressed result to a cluster peer; PUT replicates a
// freshly simulated record onto this node (the key's owner). Both are
// authenticated with the shared cluster token and answer 404 when
// clustering is disabled — the routes effectively do not exist on a
// single-node daemon.

// peerAuth gates a peer-API request: clustering must be on and the
// shared token must match (constant-time). It writes the error response
// and returns false on rejection.
func (s *Server) peerAuth(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "clustering disabled")
		return false
	}
	if !s.cluster.AuthOK(r.Header.Get(cluster.TokenHeader)) {
		writeError(w, http.StatusUnauthorized, "bad cluster token")
		return false
	}
	return true
}

// handlePeerGet answers a peer's fetch: the memory LRU first (via the
// non-counting peek — a peer lookup is not a client cache query), then
// the disk store. A record simulated on this node before clustering
// existed carries no node stamp; it is attributed to this node on the
// way out so provenance survives the hop.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	if !s.peerAuth(w, r) {
		return
	}
	key := r.PathValue("key")
	from := r.Header.Get(cluster.NodeHeader)
	if e, ok := s.cache.peek(key); ok {
		rec := store.Record{
			Key: key, Report: e.reportJSON, Tables: e.tables,
			Intervals: e.intervals, Lineage: e.lineage, Node: e.originNode,
		}
		if rec.Node == "" {
			rec.Node = s.cfg.NodeID
		}
		s.met.peerServed.Add(1)
		s.logger.Debug("peer fetch served", "key", key, "peer", from, "tier", "memory")
		writeJSON(w, http.StatusOK, rec)
		return
	}
	if s.store != nil {
		if rec, ok := s.store.Get(key); ok {
			if rec.Node == "" {
				rec.Node = s.cfg.NodeID
			}
			s.met.peerServed.Add(1)
			s.logger.Debug("peer fetch served", "key", key, "peer", from, "tier", "disk")
			writeJSON(w, http.StatusOK, rec)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no result for key %q", key)
}

// handlePeerPut accepts a replicated record from the node that just
// simulated it: this node owns the record's key, so installing it here
// is what lets every other node's owner-first fetch find it. The record
// is validated like a peer fetch body (key match, non-empty) and then
// promoted into the memory LRU and the disk store.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	if !s.peerAuth(w, r) {
		return
	}
	key := r.PathValue("key")
	var rec store.Record
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&rec); err != nil {
		writeError(w, http.StatusBadRequest, "bad record body: %v", err)
		return
	}
	if rec.Key != key {
		writeError(w, http.StatusBadRequest, "record key %.16s… does not match path key", rec.Key)
		return
	}
	if len(rec.Report) == 0 && len(rec.Tables) == 0 {
		writeError(w, http.StatusBadRequest, "empty record")
		return
	}
	s.mu.Lock()
	s.cache.put(key, &cacheEntry{
		reportJSON: rec.Report, tables: rec.Tables,
		intervals: rec.Intervals, lineage: rec.Lineage,
		originNode: rec.Node,
	})
	s.mu.Unlock()
	if s.store != nil {
		if perr := s.store.Put(rec); perr != nil {
			s.logger.Warn("replicated record store write failed",
				"key", key, "error", perr.Error())
		}
	}
	s.met.peerAccepted.Add(1)
	s.logger.Debug("peer record accepted",
		"key", key, "peer", r.Header.Get(cluster.NodeHeader), "node", rec.Node)
	w.WriteHeader(http.StatusNoContent)
}

// ClusterMemberInfo describes one member in GET /v1/cluster.
type ClusterMemberInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Self marks the answering node's own entry.
	Self bool `json:"self,omitempty"`
	// Healthy is the answering node's current belief about the peer
	// (the self entry is always healthy).
	Healthy bool `json:"healthy"`
}

// ClusterResponse answers GET /v1/cluster: the node's identity and,
// when clustering is enabled, its view of the membership. Clients use
// it to discover the member list for owner-routed submission.
type ClusterResponse struct {
	Enabled bool                `json:"enabled"`
	NodeID  string              `json:"node_id"`
	Members []ClusterMemberInfo `json:"members,omitempty"`
}

// handleCluster reports the node's cluster view. Unlike the peer API it
// is unauthenticated and answers on single-node daemons too (with
// Enabled=false): it carries topology, not results, and load balancers
// need it before they know any token.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := ClusterResponse{NodeID: s.cfg.NodeID}
	if c := s.cluster; c != nil {
		resp.Enabled = true
		for _, m := range c.Members() {
			resp.Members = append(resp.Members, ClusterMemberInfo{
				ID: m.ID, URL: m.URL,
				Self:    m.ID == c.NodeID(),
				Healthy: m.ID == c.NodeID() || c.Healthy(m.ID),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
