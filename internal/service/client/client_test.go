package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hybridvc/internal/service"
)

// flakyServer answers /v1/jobs with `fail` retryable rejections (no
// Retry-After) before accepting, recording each request's arrival time.
func flakyServer(t *testing.T, fail int, code int) (*Client, *[]time.Time, *atomic.Int32) {
	t.Helper()
	var times []time.Time
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now()) // SubmitWait retries serially; no race
		n := calls.Add(1)
		if int(n) <= fail {
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(service.ErrorResponse{Error: "try later"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.SubmitResponse{ID: "j-1", State: service.StateQueued})
	}))
	t.Cleanup(ts.Close)
	return New(ts.URL, nil), &times, &calls
}

// TestSubmitWaitBackoffFlaky529 and ...503 prove SubmitWait rides out a
// flaky server: retryable rejections without Retry-After are retried
// with growing delays until the submission lands.
func TestSubmitWaitBackoffFlaky(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		c, times, calls := flakyServer(t, 3, code)
		resp, err := c.SubmitWaitBackoff(context.Background(), service.JobSpec{},
			Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, MaxElapsed: 10 * time.Second})
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if resp.ID != "j-1" {
			t.Fatalf("code %d: resp %+v", code, resp)
		}
		if n := calls.Load(); n != 4 {
			t.Fatalf("code %d: %d requests, want 4 (3 rejections + success)", code, n)
		}
		// Delays grow: the third gap's floor (20ms*(1-jitter)=10ms) sits
		// above the first gap's ceiling... jitter makes exact ordering
		// flaky, so just require every gap respects the jittered floor of
		// its attempt and the total shows real waiting.
		gaps := make([]time.Duration, 0, 3)
		for i := 1; i < len(*times); i++ {
			gaps = append(gaps, (*times)[i].Sub((*times)[i-1]))
		}
		want := []time.Duration{5, 10, 20} // ms floors: base 10, 20, 40 each jittered by up to 1/2
		for i, g := range gaps {
			if g < want[i]*time.Millisecond {
				t.Errorf("code %d: gap %d = %v, below jittered floor %vms", code, i, g, want[i])
			}
		}
	}
}

// TestSubmitWaitMaxElapsed: a server that never recovers exhausts the
// retry budget and surfaces the last APIError instead of spinning
// forever.
func TestSubmitWaitMaxElapsed(t *testing.T) {
	c, _, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable)
	start := time.Now()
	_, err := c.SubmitWaitBackoff(context.Background(), service.JobSpec{},
		Backoff{Base: 10 * time.Millisecond, Max: 20 * time.Millisecond, MaxElapsed: 150 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("submit against a dead server succeeded")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("error does not wrap the 503 APIError: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("gave up after %v, budget was 150ms", elapsed)
	}
	if calls.Load() < 2 {
		t.Errorf("only %d attempts before giving up", calls.Load())
	}
}

// TestSubmitWaitHonorsRetryAfter: an explicit server hint overrides the
// exponential schedule.
func TestSubmitWaitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.ErrorResponse{Error: "limited"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.SubmitResponse{ID: "j-2", State: service.StateQueued})
	}))
	t.Cleanup(ts.Close)
	start := time.Now()
	resp, err := New(ts.URL, nil).SubmitWaitBackoff(context.Background(), service.JobSpec{},
		Backoff{Base: time.Millisecond, MaxElapsed: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "j-2" {
		t.Fatalf("resp %+v", resp)
	}
	if gap := time.Since(start); gap < time.Second {
		t.Errorf("retried after %v, Retry-After asked for 1s", gap)
	}
}

// TestSubmitWaitNonRetryable: a 400 returns immediately, no retries.
func TestSubmitWaitNonRetryable(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(service.ErrorResponse{Error: "bad spec"})
	}))
	t.Cleanup(ts.Close)
	_, err := New(ts.URL, nil).SubmitWait(context.Background(), service.JobSpec{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if apiErr.IsRetryable() {
		t.Error("400 reported retryable")
	}
	if calls.Load() != 1 {
		t.Errorf("%d attempts on a non-retryable error, want 1", calls.Load())
	}
}

// TestBackoffDelayBounds pins the schedule: doubling from Base, capped
// at Max, never below the jitter floor.
func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5}.WithDefaults()
	for attempt, wantCeil := range []time.Duration{10, 20, 40, 80, 80, 80} {
		ceil := wantCeil * time.Millisecond
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d > ceil || d < ceil/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
	nj := Backoff{Base: time.Millisecond, Max: time.Second, Jitter: -1}.WithDefaults()
	if d := nj.Delay(3); d != 8*time.Millisecond {
		t.Errorf("unjittered attempt 3 delay = %v, want 8ms", d)
	}
}
