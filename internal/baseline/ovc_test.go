package baseline

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
)

func setupOVC(t *testing.T) (*OVC, *osmodel.Kernel, *osmodel.Process) {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	o := NewOVC(smallConfig(1), k)
	p, err := k.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	return o, k, p
}

func TestOVCVirtualL1HitNeedsNoTranslation(t *testing.T) {
	o, _, p := setupOVC(t)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	o.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	tlbBefore := o.Energy().Accesses[0] // L1TLB
	res := o.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if res.HitLevel != 1 {
		t.Fatalf("warm access: %+v", res)
	}
	if o.Energy().Accesses[0] != tlbBefore {
		t.Error("virtual L1 hit paid TLB energy")
	}
	if o.L1VirtualHits.Value() != 1 {
		t.Errorf("virtual hits = %d", o.L1VirtualHits.Value())
	}
	// The L1 caches the virtual name; outer levels are physical.
	if o.Hierarchy().L1D(0).Probe(addr.VirtName(p.ASID, va)) == nil {
		t.Error("L1 line not virtual")
	}
	pa, _ := p.PT.Translate(va)
	if o.Hierarchy().LLC().Probe(addr.PhysName(pa)) == nil {
		t.Error("LLC line not physical")
	}
	if o.Hierarchy().LLC().Probe(addr.VirtName(p.ASID, va)) != nil {
		t.Error("virtual name leaked past the L1")
	}
}

func TestOVCL1MissStillTranslates(t *testing.T) {
	// OVC's limitation vs full-hierarchy virtual caching: every L1 miss
	// pays translation even when the data sits in the L2/LLC.
	o, _, p := setupOVC(t)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	// Touch enough lines to evict va from the tiny L1 but stay in LLC.
	o.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	for i := uint64(1); i <= 16; i++ {
		o.Access(core.Request{Kind: cache.Read, VA: va + addr.VA(i*0x100), Proc: p})
	}
	x := o.L1MissTranslations.Value()
	o.Access(core.Request{Kind: cache.Read, VA: va, Proc: p})
	if o.L1MissTranslations.Value() != x+1 {
		t.Error("L1 miss did not translate")
	}
}

func TestOVCSynonymsArePhysicalInL1(t *testing.T) {
	o, k, p := setupOVC(t)
	vas, err := k.ShareAnonymous([]*osmodel.Process{p}, 8*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	o.Access(core.Request{Kind: cache.Write, VA: vas[0], Proc: p})
	pa, _ := p.PT.Translate(vas[0])
	if o.Hierarchy().L1D(0).Probe(addr.PhysName(pa)) == nil {
		t.Error("synonym line not physical in L1")
	}
	if o.Hierarchy().L1D(0).Probe(addr.VirtName(p.ASID, vas[0])) != nil {
		t.Error("synonym line cached virtually")
	}
}

func TestOVCEnergyBetweenBaselineAndHybrid(t *testing.T) {
	// On a cache-friendly workload: baseline probes the TLB per access,
	// OVC only on L1 misses — so OVC must save TLB energy vs baseline.
	rng := rand.New(rand.NewSource(6))
	drive := func(ms core.MemSystem, p *osmodel.Process, va addr.VA) {
		for i := 0; i < 20000; i++ {
			// Hot 8 KiB working set: high L1 hit rate.
			off := addr.VA(rng.Uint64() % (8 << 10)).LineAligned()
			ms.Access(core.Request{Kind: cache.Read, VA: va + off, Proc: p})
		}
	}
	ko := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	ovc := NewOVC(DefaultConfig(1), ko) // real 32 KiB L1 holds the hot set
	po, _ := ko.NewProcess()
	vao, _ := po.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	drive(ovc, po, vao)

	kb := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	conv := NewConventional(DefaultConfig(1), kb)
	pb, _ := kb.NewProcess()
	vab, _ := pb.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	rng = rand.New(rand.NewSource(6))
	drive(conv, pb, vab)

	if ovc.Energy().Dynamic() >= conv.Energy().Dynamic()/2 {
		t.Errorf("OVC dynamic %.0f not well below baseline %.0f",
			ovc.Energy().Dynamic(), conv.Energy().Dynamic())
	}
}

func TestOVCDemandFaultAndCoW(t *testing.T) {
	o, k, p := setupOVC(t)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{Demand: true})
	res := o.Access(core.Request{Kind: cache.Write, VA: va, Proc: p})
	if !res.Fault {
		t.Fatal("no fault on demand page")
	}
	if res2 := o.Access(core.Request{Kind: cache.Write, VA: va, Proc: p}); res2.Fault {
		t.Error("retry faulted")
	}
	_ = k
}

func TestOVCMultiCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("multi-core OVC did not panic")
		}
	}()
	NewOVC(smallConfig(2), osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 26}))
}
