package segment

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

// buildWorld creates a manager with n evenly spread segments of 4 MiB each
// and a translator over them.
func buildWorld(t *testing.T, n int, withSC bool, icBytes int) (*Translator, *Manager) {
	t.Helper()
	alloc := mem.NewAllocator(1 << 34)
	m := NewManager(NewNodeArena(alloc))
	ic := NewIndexCache(icBytes)
	m.OnRebuild = ic.Flush
	const segLen = 4 << 20
	for i := 0; i < n; i++ {
		pa, ok := alloc.AllocContiguous(segLen / addr.PageSize)
		if !ok {
			t.Fatal("out of physical memory")
		}
		// Leave gaps between segments so some addresses fault.
		base := addr.VA(uint64(i) * 2 * segLen)
		if _, err := m.Allocate(asidA, base, segLen, pa, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	var sc *SegCache
	if withSC {
		sc = NewSegCache(SegCacheEntries)
	}
	return NewTranslator(DefaultTranslatorConfig(), sc, ic, m), m
}

func TestTranslateBasic(t *testing.T) {
	tr, m := buildWorld(t, 8, false, 32<<10)
	seg := m.Segments(asidA)[3]
	va := seg.Base + 0x1234
	res := tr.Translate(asidA, va)
	if res.Fault {
		t.Fatal("unexpected fault")
	}
	if res.PA != seg.PABase+0x1234 {
		t.Errorf("PA = %#x, want %#x", uint64(res.PA), uint64(seg.PABase)+0x1234)
	}
	if res.Perm != addr.PermRW || res.Seg != seg {
		t.Errorf("result: %+v", res)
	}
	if res.ICProbes == 0 {
		t.Error("walk probed no index cache nodes")
	}
}

func TestTranslateFaultsInGap(t *testing.T) {
	tr, m := buildWorld(t, 4, false, 32<<10)
	seg := m.Segments(asidA)[0]
	res := tr.Translate(asidA, seg.Base+addr.VA(seg.Length)) // first byte past the end
	if !res.Fault {
		t.Fatal("gap address did not fault")
	}
	if tr.Faults.Value() != 1 {
		t.Errorf("faults = %d", tr.Faults.Value())
	}
	// An address space with no segments faults too.
	if res := tr.Translate(asidB, 0x1000); !res.Fault {
		t.Error("foreign ASID translated")
	}
}

func TestTranslateLatencyModel(t *testing.T) {
	tr, m := buildWorld(t, 200, false, 64<<10)
	seg := m.Segments(asidA)[100]
	va := seg.Base + 0x40

	// Cold walk: every node probe misses the index cache.
	cold := tr.Translate(asidA, va)
	depth := cold.ICProbes
	wantCold := uint64(depth)*(3+165) + 7
	if cold.Latency != wantCold {
		t.Errorf("cold latency = %d, want %d (depth %d)", cold.Latency, wantCold, depth)
	}
	if cold.ICMisses != depth {
		t.Errorf("cold misses = %d, want %d", cold.ICMisses, depth)
	}

	// Warm walk: all probes hit; the paper's ~19-cycle bound (<=4 probes
	// at 3 cycles + 7-cycle table).
	warm := tr.Translate(asidA, va)
	wantWarm := uint64(depth)*3 + 7
	if warm.Latency != wantWarm {
		t.Errorf("warm latency = %d, want %d", warm.Latency, wantWarm)
	}
	if warm.Latency > 19 {
		t.Errorf("warm walk %d cycles exceeds the paper's 19-cycle bound", warm.Latency)
	}
	if warm.ICMisses != 0 {
		t.Errorf("warm misses = %d", warm.ICMisses)
	}
}

func TestSegCacheShortCircuits(t *testing.T) {
	tr, m := buildWorld(t, 50, true, 32<<10)
	seg := m.Segments(asidA)[7]
	va := seg.Base + 0x100

	first := tr.Translate(asidA, va)
	if first.SCHit {
		t.Fatal("cold access hit SC")
	}
	second := tr.Translate(asidA, va)
	if !second.SCHit {
		t.Fatal("warm access missed SC")
	}
	if second.Latency != 2 {
		t.Errorf("SC hit latency = %d, want 2", second.Latency)
	}
	if second.PA != first.PA {
		t.Error("SC returned a different translation")
	}
	// A different 2 MiB granule of the same segment misses the SC.
	third := tr.Translate(asidA, va+addr.HugePageSize)
	if third.SCHit {
		t.Error("different granule hit SC")
	}
	if tr.SC.Stats.Hits.Value() != 1 {
		t.Errorf("SC hits = %d", tr.SC.Stats.Hits.Value())
	}
}

func TestSegCacheGranuleStraddlingSegmentBoundary(t *testing.T) {
	// Two small segments inside one 2 MiB granule: an SC entry for the
	// first must not serve addresses belonging to the second.
	alloc := mem.NewAllocator(1 << 30)
	m := NewManager(NewNodeArena(alloc))
	ic := NewIndexCache(32 << 10)
	m.OnRebuild = ic.Flush
	pa1, _ := alloc.AllocContiguous(16)
	pa2, _ := alloc.AllocContiguous(16)
	s1, _ := m.Allocate(asidA, 0x0, 16*addr.PageSize, pa1, addr.PermRW)
	s2, _ := m.Allocate(asidA, 16*addr.PageSize, 16*addr.PageSize, pa2, addr.PermRO)
	tr := NewTranslator(DefaultTranslatorConfig(), NewSegCache(SegCacheEntries), ic, m)

	r1 := tr.Translate(asidA, 0x100)
	if r1.Seg != s1 {
		t.Fatal("wrong segment for first half")
	}
	r2 := tr.Translate(asidA, 16*addr.PageSize+0x100)
	if r2.Seg != s2 {
		t.Fatalf("wrong segment for second half: %+v", r2)
	}
	if r2.SCHit {
		t.Error("SC entry for s1 served s2's address")
	}
	if r2.PA != pa2+0x100 || r2.Perm != addr.PermRO {
		t.Errorf("r2 = %+v", r2)
	}
}

func TestSegCacheInvalidateSegment(t *testing.T) {
	tr, m := buildWorld(t, 4, true, 32<<10)
	seg := m.Segments(asidA)[1]
	tr.Translate(asidA, seg.Base)
	tr.SC.InvalidateSegment(seg)
	res := tr.Translate(asidA, seg.Base)
	if res.SCHit {
		t.Error("invalidated entry hit")
	}
	tr.Translate(asidA, seg.Base) // refill
	tr.SC.FlushAll()
	if res := tr.Translate(asidA, seg.Base); res.SCHit {
		t.Error("entry survived FlushAll")
	}
}

func TestIndexCacheLocality(t *testing.T) {
	// Real workloads show locality, so a modest index cache achieves high
	// hit rates (Figure 7a); random traffic over thousands of segments
	// defeats a small cache (Figure 7b).
	tr, m := buildWorld(t, 1000, false, 8<<10)
	segs := m.Segments(asidA)

	// Local phase: walk within a handful of segments.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		seg := segs[rng.Intn(8)]
		tr.Translate(asidA, seg.Base+addr.VA(rng.Uint64()%seg.Length))
	}
	localHit := tr.IC.Stats().HitRate()
	if localHit < 0.9 {
		t.Errorf("local index cache hit rate %.3f too low", localHit)
	}
}

func TestIndexCacheWorstCaseRandom(t *testing.T) {
	tr, m := buildWorld(t, 2000, false, 256)
	segs := m.Segments(asidA)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		seg := segs[rng.Intn(len(segs))]
		tr.Translate(asidA, seg.Base+addr.VA(rng.Uint64()%seg.Length))
	}
	if hr := tr.IC.Stats().HitRate(); hr > 0.7 {
		t.Errorf("tiny index cache hit rate %.3f implausibly high for random traffic", hr)
	}
}

func TestIndexCacheTinySizes(t *testing.T) {
	// The Figure 7 sweep goes down to one 64 B block; geometry must hold.
	for _, size := range []int{64, 128, 256, 1 << 10, 64 << 10} {
		ic := NewIndexCache(size)
		if ic.SizeBytes() != size {
			t.Errorf("size %d mangled", size)
		}
		if !func() bool { ic.Access(0x40); return true }() {
			t.Errorf("access failed for size %d", size)
		}
	}
}

func TestSegCacheGeometryPanics(t *testing.T) {
	for _, n := range []int{0, 7, 12, 24} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSegCache(%d) did not panic", n)
				}
			}()
			NewSegCache(n)
		}()
	}
}

func TestTranslatorWalkDepthHistogram(t *testing.T) {
	tr, m := buildWorld(t, 300, false, 32<<10)
	for _, s := range m.Segments(asidA)[:50] {
		tr.Translate(asidA, s.Base)
	}
	if tr.WalkDepth.Count() != 50 {
		t.Errorf("walk count = %d", tr.WalkDepth.Count())
	}
	if tr.WalkDepth.Max() > 4 {
		t.Errorf("walk depth %d exceeds 4 for 300 segments", tr.WalkDepth.Max())
	}
}

func TestTreeRebuildFlushesIndexCacheViaHook(t *testing.T) {
	tr, m := buildWorld(t, 16, false, 32<<10)
	seg := m.Segments(asidA)[0]
	tr.Translate(asidA, seg.Base)
	warm := tr.Translate(asidA, seg.Base)
	if warm.ICMisses != 0 {
		t.Fatal("expected warm walk")
	}
	// Allocating a segment rebuilds the tree and must flush the IC.
	pa, _ := mem.NewAllocator(1 << 30).AllocContiguous(1)
	if _, err := m.Allocate(asidB, 0x0, addr.PageSize, pa, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	cold := tr.Translate(asidA, seg.Base)
	if cold.ICMisses == 0 {
		t.Error("index cache served stale node addresses after rebuild")
	}
}
