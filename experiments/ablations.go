package experiments

import (
	"fmt"
	"math/rand"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/bloom"
	"hybridvc/internal/core"
	"hybridvc/internal/stats"
	"hybridvc/internal/synfilter"
)

// FilterDesign is one synonym filter design point for the A1 ablation.
type FilterDesign struct {
	Label string
	// Probe reports whether the design flags va as a candidate.
	Probe func(va addr.VA) bool
}

// AblationFilterDesign compares the paper's two-granularity, two-hash
// design against simpler filters: a single fine filter, a single coarse
// filter, and a one-hash variant. It marks realistic shared ranges (8-page
// regions) and measures false positives over a disjoint probe stream.
func AblationFilterDesign(scale Scale) *stats.Table {
	n := scale.pick(200_000, 2_000_000)
	rng := rand.New(rand.NewSource(23))

	// Shared ranges: 16 regions of 8 pages in the low half of the space.
	type rg struct {
		start addr.VA
		len   uint64
	}
	var ranges []rg
	for i := 0; i < 16; i++ {
		start := addr.VA(rng.Uint64()%(1<<40)) & ^addr.VA(1<<synfilter.FineBits-1)
		ranges = append(ranges, rg{start, 8 * addr.PageSize})
	}

	paper := synfilter.New()
	fineOnly := bloom.New(addr.VABits - synfilter.FineBits)
	coarseOnly := bloom.New(addr.VABits - synfilter.CoarseBits)
	oneHash := bloom.New(addr.VABits - synfilter.FineBits) // probe uses one index

	for _, r := range ranges {
		paper.MarkSynonymRange(r.start, r.len)
		for off := uint64(0); off < r.len; off += addr.PageSize {
			va := r.start + addr.VA(off)
			fineOnly.Insert(uint64(va) >> synfilter.FineBits)
			coarseOnly.Insert(uint64(va) >> synfilter.CoarseBits)
			oneHash.Insert(uint64(va) >> synfilter.FineBits)
		}
	}
	designs := []FilterDesign{
		{"two-granularity x two-hash (paper)", paper.ProbeQuiet},
		{"fine 32KB only", func(va addr.VA) bool {
			return fineOnly.Contains(uint64(va) >> synfilter.FineBits)
		}},
		{"coarse 16MB only", func(va addr.VA) bool {
			return coarseOnly.Contains(uint64(va) >> synfilter.CoarseBits)
		}},
		{"fine, single hash", func(va addr.VA) bool {
			return containsOne(oneHash, uint64(va)>>synfilter.FineBits)
		}},
	}

	t := stats.NewTable("Ablation A1: synonym filter design vs false-positive rate",
		"design", "false positives", "rate")
	for _, d := range designs {
		fp := uint64(0)
		probes := uint64(0)
		prng := rand.New(rand.NewSource(29))
		for i := uint64(0); i < n; i++ {
			// Probe the disjoint upper half of the address space.
			va := addr.VA(1<<41 | prng.Uint64()%(1<<40))
			probes++
			if d.Probe(va) {
				fp++
			}
		}
		t.AddRow(d.Label, fmt.Sprintf("%d", fp),
			fmt.Sprintf("%.4f%%", 100*stats.Ratio(fp, probes)))
	}
	return t
}

// containsOne checks only the first hash function's bit — the single-hash
// ablation.
func containsOne(f *bloom.Filter, granule uint64) bool {
	i1, _ := f.Indices(granule)
	w := f.Words()
	return w[i1/64]&(1<<(i1%64)) != 0
}

// AblationSegmentCache quantifies the segment cache's contribution (the
// Figure 9 with/without-SC pair) on a friendly and an adversarial
// workload.
func AblationSegmentCache(scale Scale) *stats.Table {
	n := scale.pick(40_000, 500_000)
	t := stats.NewTable("Ablation A2: segment cache on/off",
		"workload", "many-segment cycles", "+SC cycles", "SC speedup")
	for _, wl := range []string{"stream", "gups"} {
		run := func(org hybridvc.Organization) uint64 {
			sys, err := hybridvc.New(hybridvc.Config{Org: org})
			if err != nil {
				panic(err)
			}
			if err := sys.LoadWorkload(wl); err != nil {
				panic(err)
			}
			rep, err := sys.Run(n)
			if err != nil {
				panic(err)
			}
			return rep.Cycles
		}
		without := run(hybridvc.HybridManySeg)
		with := run(hybridvc.HybridManySegSC)
		t.AddRow(wl, fmt.Sprintf("%d", without), fmt.Sprintf("%d", with),
			fmt.Sprintf("%.3f", float64(without)/float64(with)))
	}
	return t
}

// SegmentWalkLatency reports the delayed many-segment translation latency
// distribution, validating the paper's ~20-cycle estimate (<=4 index cache
// probes at 3 cycles plus a 7-cycle segment table access).
func SegmentWalkLatency(scale Scale) *stats.Table {
	n := scale.pick(60_000, 500_000)
	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySeg})
	if err != nil {
		panic(err)
	}
	if err := sys.LoadWorkload("xalancbmk"); err != nil {
		panic(err)
	}
	if _, err := sys.Run(n); err != nil {
		panic(err)
	}
	tr := sys.Mem.(*core.HybridMMU).Translator()
	t := stats.NewTable("Delayed many-segment translation walk statistics (Section IV-C)",
		"metric", "value")
	t.AddRow("index tree walks", fmt.Sprintf("%d", tr.Walks.Value()))
	t.AddRow("mean walk depth (nodes)", fmt.Sprintf("%.2f", tr.WalkDepth.Mean()))
	t.AddRow("max walk depth (nodes)", fmt.Sprintf("%d", tr.WalkDepth.Max()))
	warmCycles := tr.WalkDepth.Mean()*3 + 7
	t.AddRow("warm walk latency (cycles)", fmt.Sprintf("%.1f", warmCycles))
	t.AddRow("paper estimate (cycles)", "<= 19-20")
	return t
}
