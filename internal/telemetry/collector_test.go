package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCollectorLockstep(t *testing.T) {
	c := NewCollector()
	c.ObserveCompleted("hybrid", 2*time.Millisecond, 30*time.Millisecond, 32*time.Millisecond)
	c.ObserveCompleted("", 0, 5*time.Second, 5*time.Second) // sweep: no org family
	c.ObserveCompleted("hybrid", time.Millisecond, time.Second, time.Second+time.Millisecond)

	st := c.Snapshot()
	if st.QueueWait.Total != 3 || st.Execute.Total != 3 || st.EndToEnd.Total != 3 {
		t.Fatalf("stage families out of lockstep: wait=%d exec=%d e2e=%d",
			st.QueueWait.Total, st.Execute.Total, st.EndToEnd.Total)
	}
	if got := c.Completed(); got != 3 {
		t.Fatalf("Completed = %d, want 3", got)
	}
	if len(st.Simulate) != 1 || st.Simulate["hybrid"].Total != 2 {
		t.Fatalf("per-org simulate family wrong: %+v", st.Simulate)
	}
	if orgs := st.Orgs(); len(orgs) != 1 || orgs[0] != "hybrid" {
		t.Fatalf("Orgs() = %v", orgs)
	}
}

func TestCollectorCacheServe(t *testing.T) {
	c := NewCollector()
	c.ObserveCacheServe(300 * time.Microsecond)
	c.ObserveCacheServe(-time.Second) // clock skew clamps to zero, never panics
	st := c.Snapshot()
	if st.CacheServe.Total != 2 {
		t.Fatalf("cache-serve total = %d, want 2", st.CacheServe.Total)
	}
	if c.Completed() != 0 {
		t.Fatal("cache serves must not count as completions")
	}
}

// TestCollectorSnapshotConsistency hammers ObserveCompleted from many
// goroutines while snapshotting: every snapshot must see the three base
// families agreeing on the number of completions, and the rendered
// exposition must lint clean with +Inf == completed.
func TestCollectorSnapshotConsistency(t *testing.T) {
	c := NewCollector()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.ObserveCompleted("vc", time.Millisecond, 2*time.Millisecond, 3*time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		st := c.Snapshot()
		if st.QueueWait.Total != st.Execute.Total || st.Execute.Total != st.EndToEnd.Total {
			t.Errorf("snapshot %d: families disagree: wait=%d exec=%d e2e=%d",
				i, st.QueueWait.Total, st.Execute.Total, st.EndToEnd.Total)
			break
		}
		enc := NewEncoder()
		enc.Histogram("e2e_seconds", "E.", st.EndToEnd, LatencyScale)
		if err := Lint(enc.Bytes()); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
