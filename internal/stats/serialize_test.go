package stats

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleHistogram() *Histogram {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []uint64{1, 1, 2, 3, 4, 7, 9, 40} {
		h.Observe(v)
	}
	return h
}

func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	h := sampleHistogram()
	want := h.Snapshot()

	// MarshalJSON on the live histogram and on the snapshot must agree.
	fromHist, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromHist, fromSnap) {
		t.Errorf("histogram JSON %s != snapshot JSON %s", fromHist, fromSnap)
	}

	var got HistogramSnapshot
	if err := json.Unmarshal(fromSnap, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if want.Total != 8 || want.Max != 40 || want.P50 != 4 {
		t.Errorf("unexpected summary stats: %+v", want)
	}
	if len(want.Counts) != len(want.Bounds)+1 {
		t.Errorf("counts %d must be bounds %d + overflow", len(want.Counts), len(want.Bounds))
	}
}

func TestHistogramSnapshotIsFrozen(t *testing.T) {
	h := sampleHistogram()
	s := h.Snapshot()
	before := append([]uint64(nil), s.Counts...)
	h.Observe(100)
	if !reflect.DeepEqual(s.Counts, before) {
		t.Error("snapshot counts changed after a later Observe")
	}
}

func TestHistogramSnapshotCSV(t *testing.T) {
	s := sampleHistogram().Snapshot()
	if len(s.CSVHeader()) != len(s.CSVRow()) {
		t.Fatalf("header %d columns, row %d", len(s.CSVHeader()), len(s.CSVRow()))
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d CSV records, want header + row", len(recs))
	}
	if recs[0][0] != "le_1" || !strings.Contains(strings.Join(recs[0], ","), "overflow") {
		t.Errorf("unexpected header %v", recs[0])
	}
}

func TestHistogramReset(t *testing.T) {
	h := sampleHistogram()
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("reset left state: count=%d max=%d mean=%f", h.Count(), h.Max(), h.Mean())
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if h.Bucket(i) != 0 {
			t.Errorf("bucket %d not cleared", i)
		}
	}
	h.Observe(3)
	if h.Count() != 1 || h.Max() != 3 {
		t.Error("histogram unusable after Reset")
	}
}

func TestTimelineWriters(t *testing.T) {
	tl := &Timeline{}
	tl.Append(Interval{Index: 0, EndInsns: 10, Insns: 10, WalkDepth: sampleHistogram().Snapshot()})
	tl.Append(Interval{Index: 1, StartInsns: 10, EndInsns: 20, Insns: 10})
	if tl.Len() != 2 {
		t.Fatalf("len = %d", tl.Len())
	}
	if got, ok := tl.Latest(); !ok || got.Index != 1 {
		t.Fatalf("Latest = %+v (ok=%v)", got, ok)
	}

	var nd bytes.Buffer
	if err := tl.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(nd.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d", len(lines))
	}
	var iv Interval
	if err := json.Unmarshal([]byte(lines[0]), &iv); err != nil {
		t.Fatal(err)
	}
	if iv.WalkDepth.Total != 8 {
		t.Errorf("embedded histogram lost in NDJSON: %+v", iv.WalkDepth)
	}

	var cb bytes.Buffer
	if err := tl.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&cb).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("CSV records = %d, want header + 2", len(recs))
	}
	for i, r := range recs {
		if len(r) != len(recs[0]) {
			t.Errorf("record %d has %d fields, header has %d", i, len(r), len(recs[0]))
		}
	}
}
