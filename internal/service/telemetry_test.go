// Observability tests: the Prometheus exposition contract (well-formed
// on every scrape, histograms reconciling exactly with the completed
// counter mid-run), job-lineage propagation across the dedup/coalesce
// and cache-hit paths, lineage-stamped structured logs, and the SSE
// timeline stream.
package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridvc/internal/service"
	"hybridvc/internal/service/client"
	"hybridvc/internal/stats"
	"hybridvc/internal/telemetry"
)

// startServerURL is startServer plus the raw base URL, for tests that
// need to set headers the client does not.
func startServerURL(t *testing.T, cfg service.Config) (*service.Server, *client.Client, string) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return srv, client.New(ts.URL, nil), ts.URL
}

// promValue extracts the value of the exposition line starting with the
// exact sample prefix (name or name{labels}).
func promValue(t *testing.T, body []byte, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				t.Fatalf("sample %s: bad value %q", prefix, rest)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in exposition:\n%s", prefix, body)
	return 0
}

// TestMetricsLint is the `make metrics-lint` entry point: boot an
// in-process daemon, run work through it, scrape /metrics as a
// Prometheus client would and validate the exposition is well-formed.
func TestMetricsLint(t *testing.T) {
	_, c, _ := startServerURL(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	ctx := context.Background()
	for seed := int64(1); seed <= 2; seed++ {
		resp, err := c.Submit(ctx, service.JobSpec{Instructions: 30_000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, c, resp.ID, service.StateDone)
	}
	body, err := c.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("exposition not well-formed: %v\n%s", err, body)
	}
	for _, family := range []string{
		"# TYPE hvcd_queue_wait_seconds histogram",
		"# TYPE hvcd_execute_seconds histogram",
		"# TYPE hvcd_e2e_seconds histogram",
		"# TYPE hvcd_cache_serve_seconds histogram",
		"# TYPE hvcd_simulate_seconds histogram",
		"# TYPE hvcd_completed_total counter",
		"# TYPE hvcd_workers_busy gauge",
		"# TYPE hvcd_deadline_exceeded_total counter",
		"# TYPE hvcd_breaker_trips_total counter",
		"# TYPE hvcd_shed_total counter",
		"# TYPE hvcd_breaker_state gauge",
		"# TYPE hvcd_store_hits_total counter",
		"# TYPE hvcd_store_misses_total counter",
		"# TYPE hvcd_store_writes_total counter",
		"# TYPE hvcd_store_write_errors_total counter",
		"# TYPE hvcd_store_evictions_total counter",
		"# TYPE hvcd_store_corruptions_total counter",
		"# TYPE hvcd_store_records gauge",
		"# TYPE hvcd_store_bytes gauge",
		"# TYPE hvcd_peer_fetches_total counter",
		"# TYPE hvcd_peer_hits_total counter",
		"# TYPE hvcd_peer_misses_total counter",
		"# TYPE hvcd_peer_errors_total counter",
		"# TYPE hvcd_peer_skipped_total counter",
		"# TYPE hvcd_peer_replicated_total counter",
		"# TYPE hvcd_peer_replicate_errors_total counter",
		"# TYPE hvcd_peer_served_total counter",
		"# TYPE hvcd_peer_accepted_total counter",
		"# TYPE hvcd_cluster_nodes gauge",
		"# TYPE hvcd_cluster_peers_healthy gauge",
		"# TYPE hvcd_node_info gauge",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("exposition missing %q", family)
		}
	}
	// The store is enabled, so the write path must show through the
	// exposition: two simulations → two durable records.
	if v := promValue(t, body, "hvcd_store_writes_total"); v != 2 {
		t.Errorf("hvcd_store_writes_total = %v, want 2", v)
	}
	if v := promValue(t, body, "hvcd_store_records"); v != 2 {
		t.Errorf("hvcd_store_records = %v, want 2", v)
	}
	if v := promValue(t, body, "hvcd_breaker_state"); v != 0 {
		t.Errorf("hvcd_breaker_state = %v, want 0 (closed)", v)
	}

	// A store-less daemon still exposes every family, zero-valued, so the
	// family set is stable for dashboards.
	_, c2, _ := startServerURL(t, service.Config{Workers: 1})
	body2, err := c2.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(body2); err != nil {
		t.Fatalf("store-less exposition not well-formed: %v", err)
	}
	if v := promValue(t, body2, "hvcd_store_records"); v != 0 {
		t.Errorf("store-less hvcd_store_records = %v, want 0", v)
	}
	// Same stability for the cluster families: a single-node daemon
	// exposes them zero-valued, with the default node identity stamped.
	if v := promValue(t, body2, "hvcd_cluster_nodes"); v != 0 {
		t.Errorf("single-node hvcd_cluster_nodes = %v, want 0", v)
	}
	if v := promValue(t, body2, "hvcd_peer_fetches_total"); v != 0 {
		t.Errorf("single-node hvcd_peer_fetches_total = %v, want 0", v)
	}
	if v := promValue(t, body2, `hvcd_node_info{node_id="hvcd"}`); v != 1 {
		t.Errorf("single-node hvcd_node_info = %v, want 1", v)
	}
}

// TestMetricsPrometheus is the acceptance invariant: on EVERY scrape —
// including scrapes racing in-flight completions — the queue-wait,
// execute and end-to-end histograms' +Inf buckets reconcile exactly
// with hvcd_completed_total from the same scrape.
func TestMetricsPrometheus(t *testing.T) {
	srv, c, _ := startServerURL(t, service.Config{Workers: 2})
	ctx := context.Background()

	const jobs = 6
	ids := make([]string, 0, jobs)
	for seed := int64(1); seed <= jobs; seed++ {
		resp, err := c.SubmitWait(ctx, service.JobSpec{Instructions: 40_000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)

		// Scrape mid-run, while workers are completing jobs concurrently.
		body, err := c.MetricsProm(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := telemetry.Lint(body); err != nil {
			t.Fatalf("mid-run scrape not well-formed: %v", err)
		}
		completed := promValue(t, body, "hvcd_completed_total")
		for _, h := range []string{"hvcd_queue_wait_seconds", "hvcd_execute_seconds", "hvcd_e2e_seconds"} {
			inf := promValue(t, body, h+`_bucket{le="+Inf"}`)
			if inf != completed {
				t.Fatalf("mid-run scrape: %s +Inf bucket %v != hvcd_completed_total %v\n%s",
					h, inf, completed, body)
			}
			if cnt := promValue(t, body, h+"_count"); cnt != inf {
				t.Fatalf("%s: _count %v != +Inf %v", h, cnt, inf)
			}
		}
	}

	for _, id := range ids {
		waitState(t, c, id, service.StateDone)
	}
	body, err := c.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	completed := promValue(t, body, "hvcd_completed_total")
	if completed != jobs {
		t.Fatalf("final hvcd_completed_total = %v, want %d", completed, jobs)
	}
	if m := srv.MetricsSnapshot(); uint64(completed) != m.Completed {
		t.Fatalf("exposition completed %v != MetricsSnapshot.Completed %d", completed, m.Completed)
	}
	if inf := promValue(t, body, `hvcd_e2e_seconds_bucket{le="+Inf"}`); inf != completed {
		t.Fatalf("final e2e +Inf %v != completed %v", inf, completed)
	}
}

// TestMetricsContentNegotiation: no Accept header (or JSON) keeps the
// legacy expvar-style JSON body; text/plain switches to the exposition.
func TestMetricsContentNegotiation(t *testing.T) {
	_, c, base := startServerURL(t, service.Config{Workers: 1})
	ctx := context.Background()

	// The Go client sends no Accept header: must decode as JSON.
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("JSON metrics path broken: %v", err)
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if err := telemetry.Lint(body); err != nil {
		t.Errorf("negotiated exposition: %v", err)
	}
}

// TestLineagePropagation walks a spec through all three submission
// paths — fresh, coalesced onto a live job, served from a finished
// job — and checks each submission gets its own lineage ID while the
// origin lineage pins the request that actually scheduled the work.
func TestLineagePropagation(t *testing.T) {
	_, c, base := startServerURL(t, service.Config{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	// Occupy the only worker so the next submission stays queued.
	long, err := c.Submit(ctx, service.JobSpec{Instructions: 500_000_000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, long.ID, service.StateRunning)

	spec := service.JobSpec{Instructions: 30_000, Seed: 5}
	b1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b1.Lineage, "lin-") || b1.OriginLineage != b1.Lineage {
		t.Fatalf("fresh submission lineage wrong: %+v", b1)
	}

	b2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !b2.Deduped || b2.ID != b1.ID || b2.Key != b1.Key {
		t.Fatalf("second submission did not coalesce: %+v", b2)
	}
	if b2.Lineage == b1.Lineage {
		t.Fatal("coalesced submission reused the originator's lineage ID")
	}
	if b2.OriginLineage != b1.Lineage {
		t.Fatalf("coalesced origin = %q, want originator %q", b2.OriginLineage, b1.Lineage)
	}

	if err := c.Cancel(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, b1.ID, service.StateDone)

	b3, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !b3.Cached {
		t.Fatalf("third submission not served from the finished job: %+v", b3)
	}
	if b3.Lineage == b1.Lineage || b3.Lineage == b2.Lineage {
		t.Fatal("cache-served submission reused an earlier lineage ID")
	}
	if b3.OriginLineage != b1.Lineage {
		t.Fatalf("cache-served origin = %q, want producing run %q", b3.OriginLineage, b1.Lineage)
	}

	// The shared job reports the originator's lineage in its status.
	st, err := c.Job(ctx, b1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lineage != b1.Lineage {
		t.Fatalf("job status lineage = %q, want %q", st.Lineage, b1.Lineage)
	}

	// A well-formed X-Request-Id is adopted as the lineage ID and echoed
	// in the X-Lineage-Id response header.
	body, _ := json.Marshal(service.JobSpec{Instructions: 30_000, Seed: 6})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Lineage-Id"); got != "req-trace-42" {
		t.Errorf("X-Lineage-Id = %q, want adopted request ID", got)
	}
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Lineage != "req-trace-42" {
		t.Errorf("response lineage = %q, want adopted request ID", sub.Lineage)
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredLogsCarryLineage: every lifecycle transition of a job
// logs one structured record stamped with the job's lineage ID and key.
func TestStructuredLogsCarryLineage(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, err := service.New(service.Config{Workers: 1, SpoolDir: t.TempDir(), Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	res, err := srv.Submit(service.JobSpec{Instructions: 30_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	<-res.Job.Done()

	// The "done" record is written just after the job wakes watchers;
	// poll briefly rather than race it.
	want := map[string]bool{"submitted": false, "running": false, "done": false}
	deadline := time.Now().Add(5 * time.Second)
	for {
		for event := range want {
			want[event] = false
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.Contains(line, `"event"`) {
				continue
			}
			var rec struct {
				Event   string `json:"event"`
				Lineage string `json:"lineage"`
				Key     string `json:"key"`
				Job     string `json:"job"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("unparseable log line %q: %v", line, err)
			}
			if _, tracked := want[rec.Event]; tracked && rec.Job == res.Job.ID {
				if rec.Lineage != res.Lineage {
					t.Fatalf("%s log lineage = %q, want %q", rec.Event, rec.Lineage, res.Lineage)
				}
				if rec.Key != res.Job.Key {
					t.Fatalf("%s log key = %q, want %q", rec.Event, rec.Key, res.Job.Key)
				}
				want[rec.Event] = true
			}
		}
		all := true
		for _, seen := range want {
			all = all && seen
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("missing lifecycle log records: %v\nlogs:\n%s", want, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTimelineSSE: the SSE stream carries the same intervals as the
// NDJSON stream, frames them with id: cursors, terminates with a done
// event, and Last-Event-ID resumes mid-stream.
func TestTimelineSSE(t *testing.T) {
	_, c, base := startServerURL(t, service.Config{Workers: 1})
	ctx := context.Background()

	resp, err := c.Submit(ctx, service.JobSpec{Instructions: 100_000, Interval: 5_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, resp.ID, service.StateDone)

	var ndjson []stats.Interval
	if err := c.Timeline(ctx, resp.ID, false, func(iv stats.Interval) error {
		ndjson = append(ndjson, iv)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ndjson) < 3 {
		t.Fatalf("want several intervals to stream, got %d", len(ndjson))
	}

	var sse []stats.Interval
	if err := c.TimelineSSE(ctx, resp.ID, -1, true, func(iv stats.Interval) error {
		sse = append(sse, iv)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sse) != len(ndjson) {
		t.Fatalf("SSE streamed %d intervals, NDJSON %d", len(sse), len(ndjson))
	}
	for i := range sse {
		if sse[i].Index != ndjson[i].Index || sse[i].Insns != ndjson[i].Insns {
			t.Fatalf("SSE interval %d differs from NDJSON: %+v vs %+v", i, sse[i], ndjson[i])
		}
	}

	// Resume after the second interval: only the tail arrives.
	var tail []stats.Interval
	if err := c.TimelineSSE(ctx, resp.ID, ndjson[1].Index, true, func(iv stats.Interval) error {
		tail = append(tail, iv)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(ndjson)-2 || tail[0].Index != ndjson[2].Index {
		t.Fatalf("resume from id %d streamed %d intervals starting at %v, want %d starting at %d",
			ndjson[1].Index, len(tail), tail, len(ndjson)-2, ndjson[2].Index)
	}

	// Raw framing: id: lines carry the interval ordinal and the stream
	// ends with the done event.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+resp.ID+"/timeline?follow=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if ct := raw.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(raw.Body)
	var ids []string
	sawDone := false
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "id: "); ok {
			ids = append(ids, rest)
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if want := fmt.Sprint(ndjson[0].Index); len(ids) == 0 || ids[0] != want {
		t.Errorf("first SSE id = %v, want %s", ids, want)
	}
	if !sawDone {
		t.Error("SSE stream did not terminate with event: done")
	}
}
