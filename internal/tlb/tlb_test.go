package tlb

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
)

var asidA = addr.MakeASID(0, 1)
var asidB = addr.MakeASID(0, 2)

func small() *TLB {
	return New(Config{Name: "t", Entries: 8, Ways: 2, Latency: 1})
}

func TestTLBGeometryPanics(t *testing.T) {
	for _, bad := range []Config{
		{Entries: 0, Ways: 1},
		{Entries: 8, Ways: 0},
		{Entries: 8, Ways: 3},
		{Entries: 24, Ways: 4}, // 6 sets, not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestTLBInsertLookup(t *testing.T) {
	tb := small()
	if _, ok := tb.Lookup(asidA, 5); ok {
		t.Fatal("cold lookup hit")
	}
	tb.Insert(Entry{ASID: asidA, VPN: 5, PFN: 42, Perm: addr.PermRW})
	e, ok := tb.Lookup(asidA, 5)
	if !ok || e.PFN != 42 || e.Perm != addr.PermRW {
		t.Fatalf("lookup after insert: %+v ok=%v", e, ok)
	}
	if tb.Stats.Hits.Value() != 1 || tb.Stats.Misses.Value() != 1 {
		t.Errorf("stats: %v", tb.Stats)
	}
}

func TestTLBASIDSeparation(t *testing.T) {
	tb := small()
	tb.Insert(Entry{ASID: asidA, VPN: 5, PFN: 1})
	tb.Insert(Entry{ASID: asidB, VPN: 5, PFN: 2})
	ea, _ := tb.Lookup(asidA, 5)
	eb, _ := tb.Lookup(asidB, 5)
	if ea == nil || eb == nil || ea.PFN != 1 || eb.PFN != 2 {
		t.Fatal("ASIDs aliased")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tb := small() // 4 sets x 2 ways; set = vpn & 3
	tb.Insert(Entry{ASID: asidA, VPN: 0, PFN: 10})
	tb.Insert(Entry{ASID: asidA, VPN: 4, PFN: 14})
	tb.Lookup(asidA, 0) // VPN 4 becomes LRU
	v, evicted := tb.Insert(Entry{ASID: asidA, VPN: 8, PFN: 18})
	if !evicted || v.VPN != 4 {
		t.Fatalf("victim = %+v evicted=%v, want VPN 4", v, evicted)
	}
	if _, ok := tb.Probe(asidA, 0); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestTLBInsertReplacesInPlace(t *testing.T) {
	tb := small()
	tb.Insert(Entry{ASID: asidA, VPN: 3, PFN: 1, Perm: addr.PermRO})
	if _, evicted := tb.Insert(Entry{ASID: asidA, VPN: 3, PFN: 9, Perm: addr.PermRW}); evicted {
		t.Error("replacement evicted")
	}
	e, _ := tb.Probe(asidA, 3)
	if e.PFN != 9 || e.Perm != addr.PermRW {
		t.Errorf("entry not updated: %+v", e)
	}
	if tb.Occupancy() != 1 {
		t.Errorf("occupancy = %d", tb.Occupancy())
	}
}

func TestTLBShootdown(t *testing.T) {
	tb := small()
	tb.Insert(Entry{ASID: asidA, VPN: 7, PFN: 1})
	tb.Insert(Entry{ASID: asidB, VPN: 7, PFN: 2})
	if !tb.Shootdown(asidA, 7) {
		t.Fatal("shootdown found nothing")
	}
	if tb.Shootdown(asidA, 7) {
		t.Error("second shootdown found an entry")
	}
	if _, ok := tb.Probe(asidB, 7); !ok {
		t.Error("shootdown removed the wrong ASID")
	}
}

func TestTLBFlushASID(t *testing.T) {
	tb := small()
	tb.Insert(Entry{ASID: asidA, VPN: 1})
	tb.Insert(Entry{ASID: asidA, VPN: 2})
	tb.Insert(Entry{ASID: asidB, VPN: 3})
	if n := tb.FlushASID(asidA); n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	if tb.Occupancy() != 1 {
		t.Errorf("occupancy = %d", tb.Occupancy())
	}
	tb.FlushAll()
	if tb.Occupancy() != 0 {
		t.Error("FlushAll left entries")
	}
}

func TestTLBNonSynonymFlag(t *testing.T) {
	// False-positive correction entries carry NonSynonym.
	tb := small()
	tb.Insert(Entry{ASID: asidA, VPN: 9, NonSynonym: true})
	e, ok := tb.Probe(asidA, 9)
	if !ok || !e.NonSynonym {
		t.Fatal("NonSynonym flag lost")
	}
}

func TestTLBFullyAssociative(t *testing.T) {
	tb := New(Config{Name: "fa", Entries: 4, Ways: 4, Latency: 1})
	for vpn := uint64(0); vpn < 4; vpn++ {
		tb.Insert(Entry{ASID: asidA, VPN: vpn * 16}) // would conflict if set-indexed
	}
	if tb.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4 (fully associative)", tb.Occupancy())
	}
}

func TestTwoLevelRefill(t *testing.T) {
	tl := NewTwoLevel(DefaultTwoLevelConfig())
	res := tl.Lookup(asidA, 100)
	if res.Level != 0 || res.Latency != 1+7 {
		t.Fatalf("cold lookup: %+v", res)
	}
	tl.Insert(Entry{ASID: asidA, VPN: 100, PFN: 55})
	res = tl.Lookup(asidA, 100)
	if res.Level != 1 || res.Latency != 1 || res.Entry.PFN != 55 {
		t.Fatalf("L1 hit: %+v", res)
	}
	// Evict from L1 (64 entries, 16 sets, 4 ways): 5 conflicting VPNs.
	for i := uint64(1); i <= 4; i++ {
		tl.Insert(Entry{ASID: asidA, VPN: 100 + i*16, PFN: i})
	}
	res = tl.Lookup(asidA, 100)
	if res.Level != 2 || res.Latency != 8 {
		t.Fatalf("L2 hit: %+v", res)
	}
	// The L2 hit must refill L1.
	res = tl.Lookup(asidA, 100)
	if res.Level != 1 {
		t.Fatalf("refill missing: %+v", res)
	}
}

func TestTwoLevelShootdownAndCounts(t *testing.T) {
	tl := NewTwoLevel(DefaultTwoLevelConfig())
	tl.Insert(Entry{ASID: asidA, VPN: 1, PFN: 1})
	tl.Shootdown(asidA, 1)
	if res := tl.Lookup(asidA, 1); res.Level != 0 {
		t.Error("entry survived shootdown")
	}
	tl.Insert(Entry{ASID: asidA, VPN: 2, PFN: 2})
	tl.FlushASID(asidA)
	if res := tl.Lookup(asidA, 2); res.Level != 0 {
		t.Error("entry survived ASID flush")
	}
	if tl.Accesses() != 2 {
		t.Errorf("accesses = %d, want 2", tl.Accesses())
	}
	if tl.Misses() != 2 {
		t.Errorf("misses = %d, want 2", tl.Misses())
	}
}

func TestTLBCapacityBehaviour(t *testing.T) {
	// A working set larger than the TLB must thrash; smaller must not.
	tb := New(Config{Name: "t", Entries: 64, Ways: 4, Latency: 1})
	fill := func(pages uint64, rounds int) (hits, total uint64) {
		tb.FlushAll()
		tb.Stats.Hits, tb.Stats.Misses = 0, 0
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < rounds; i++ {
			vpn := rng.Uint64() % pages
			if _, ok := tb.Lookup(asidA, vpn); !ok {
				tb.Insert(Entry{ASID: asidA, VPN: vpn})
			}
		}
		return tb.Stats.Hits.Value(), tb.Stats.Accesses()
	}
	hitsSmall, totalSmall := fill(16, 4000)
	hitsBig, totalBig := fill(4096, 4000)
	if float64(hitsSmall)/float64(totalSmall) < 0.95 {
		t.Errorf("small working set hit rate %f too low", float64(hitsSmall)/float64(totalSmall))
	}
	if float64(hitsBig)/float64(totalBig) > 0.1 {
		t.Errorf("large working set hit rate %f too high", float64(hitsBig)/float64(totalBig))
	}
}
