// Command hvcsim runs a single simulation: pick an organization, load one
// or more named workloads, run a number of instructions per core, and
// print the performance report with a translation-energy breakdown.
//
// Usage:
//
//	hvcsim -org hybrid-manyseg+sc -workloads gups,mcf -insns 500000 -cores 2
//	hvcsim -list
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"hybridvc"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/workload"
)

func main() {
	org := flag.String("org", string(hybridvc.HybridManySegSC),
		"memory system organization (see -list)")
	wls := flag.String("workloads", "gups", "comma-separated workload names")
	insns := flag.Uint64("insns", 200_000, "instructions per core")
	cores := flag.Int("cores", 1, "hardware cores")
	llc := flag.Int("llc", 0, "LLC size in bytes (0 = default 2 MiB)")
	dtlb := flag.Int("dtlb", 1024, "delayed TLB entries (hybrid-dtlb / enigma)")
	ic := flag.Int("ic", 32<<10, "index cache bytes (many-segment)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list organizations and workloads, then exit")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	compare := flag.Bool("compare", false, "run every native organization on the workloads and rank by cycles")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	timeline := flag.String("timeline", "", "write the interval time-series to this file (.csv = CSV, else NDJSON)")
	interval := flag.Uint64("interval", 0, "instructions per time-series interval (0 = 10000 when -timeline/-metrics-addr is set)")
	metricsAddr := flag.String("metrics-addr", "", "serve live expvar metrics on this address (e.g. :8080) during the run")
	flag.Parse()

	if *list {
		fmt.Println("organizations:")
		for _, o := range hybridvc.Organizations() {
			fmt.Printf("  %s\n", o)
		}
		fmt.Println("workloads:")
		var names []string
		for name := range workload.Specs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			s := workload.Specs[n]
			fmt.Printf("  %-11s %4d regions, %5.1f MiB, %d proc(s)\n",
				n, len(s.Regions), float64(s.TotalBytes())/(1<<20), max(1, s.Procs))
		}
		return
	}

	stopCPU := startCPUProfile(*cpuprofile)

	if *compare {
		runComparison(*wls, *insns, *cores, *llc, *dtlb, *ic, *seed)
		stopCPU()
		writeMemProfile(*memprofile)
		return
	}

	if !knownOrg(*org) {
		var names []string
		for _, o := range hybridvc.Organizations() {
			names = append(names, string(o))
		}
		fmt.Fprintf(os.Stderr, "hvcsim: unknown organization %q (want one of: %s)\n",
			*org, strings.Join(names, ", "))
		flag.Usage()
		os.Exit(2)
	}

	observing := *timeline != "" || *metricsAddr != ""
	if observing && *interval == 0 {
		*interval = 10_000
	}
	simCfg := sim.DefaultConfig()
	simCfg.Interval = *interval

	sys, err := hybridvc.New(hybridvc.Config{
		Org:               hybridvc.Organization(*org),
		Cores:             *cores,
		LLCBytes:          *llc,
		DelayedTLBEntries: *dtlb,
		IndexCacheBytes:   *ic,
		Seed:              *seed,
		Sim:               simCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	for _, name := range strings.Split(*wls, ",") {
		if err := sys.LoadWorkload(strings.TrimSpace(name)); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
	}

	var report sim.Report
	if observing {
		// Drive the simulator directly: the Timeline must exist before the
		// run starts so the live metrics endpoint can read it concurrently.
		simulator := sim.New(simCfg, sys.Mem, sys.Generators())
		if *metricsAddr != "" {
			serveMetrics(*metricsAddr, *org, *wls, simulator.Timeline())
		}
		report = simulator.Run(*insns)
		if *timeline != "" {
			if err := writeTimeline(*timeline, simulator.Timeline()); err != nil {
				fmt.Fprintln(os.Stderr, "hvcsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "hvcsim: wrote %d intervals to %s\n",
				simulator.Timeline().Len(), *timeline)
		}
	} else {
		report, err = sys.Run(*insns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
	}
	stopCPU()
	writeMemProfile(*memprofile)
	if *jsonOut {
		fmt.Println(report.JSON())
		return
	}
	fmt.Println(report)
	fmt.Printf("per-core IPC: ")
	for i, ipc := range report.PerCoreIPC {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.3f", ipc)
	}
	fmt.Println()
	fmt.Println("\ntranslation energy breakdown:")
	fmt.Print(sys.Mem.Energy().Breakdown())
}

// writeTimeline writes the time-series to path: CSV when the extension
// is .csv, NDJSON otherwise.
func writeTimeline(path string, tl *stats.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return tl.WriteCSV(f)
	}
	return tl.WriteNDJSON(f)
}

// serveMetrics starts an expvar HTTP endpoint publishing the run's
// identity and the latest interval snapshot; GET /debug/vars returns all
// published variables as one JSON object. The Timeline is mutex-guarded,
// so reads are safe while the simulation goroutine appends.
func serveMetrics(addr, org, wls string, tl *stats.Timeline) {
	expvar.NewString("hvcsim.org").Set(org)
	expvar.NewString("hvcsim.workloads").Set(wls)
	expvar.Publish("hvcsim.intervals", expvar.Func(func() any { return tl.Len() }))
	expvar.Publish("hvcsim.latest", expvar.Func(func() any {
		iv, ok := tl.Latest()
		if !ok {
			return nil
		}
		return iv
	}))
	go func() {
		// expvar self-registers on the default mux at /debug/vars.
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim: metrics:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "hvcsim: live metrics at http://%s/debug/vars\n", addr)
}

// knownOrg reports whether name is a selectable organization.
func knownOrg(name string) bool {
	for _, o := range hybridvc.Organizations() {
		if string(o) == name {
			return true
		}
	}
	return false
}

// startCPUProfile begins CPU profiling when path is non-empty; the
// returned function stops profiling and closes the file.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps a heap profile (after a GC, so the profile shows
// live allocations) when path is non-empty.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "hvcsim:", err)
		os.Exit(1)
	}
}

// runComparison runs the workloads on every native organization and prints
// a ranking. Virtualized organizations are skipped (different substrate);
// OVC is skipped when more than one core is requested.
func runComparison(wls string, insns uint64, cores, llc, dtlb, ic int, seed int64) {
	type row struct {
		org    hybridvc.Organization
		report string
		cycles uint64
	}
	var rows []row
	for _, org := range hybridvc.Organizations() {
		if org.Virtualized() || (org == hybridvc.OVC && cores != 1) {
			continue
		}
		sys, err := hybridvc.New(hybridvc.Config{
			Org: org, Cores: cores, LLCBytes: llc,
			DelayedTLBEntries: dtlb, IndexCacheBytes: ic, Seed: seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		for _, name := range strings.Split(wls, ",") {
			if err := sys.LoadWorkload(strings.TrimSpace(name)); err != nil {
				fmt.Fprintln(os.Stderr, "hvcsim:", err)
				os.Exit(1)
			}
		}
		rep, err := sys.Run(insns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvcsim:", err)
			os.Exit(1)
		}
		rows = append(rows, row{org, rep.String(), rep.Cycles})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles < rows[j].cycles })
	fmt.Printf("workloads %q, %d instructions/core, %d core(s) — fastest first:\n", wls, insns, cores)
	for i, r := range rows {
		fmt.Printf("%2d. %s\n", i+1, r.report)
	}
}
