// Package bloom implements the 1K-bit Bloom filters used by the synonym
// filter (Section III-B of the paper).
//
// Each filter hashes a granule number (the virtual address trimmed by the
// filter's granularity) with two hash functions. A hash function partitions
// the granule bits into two parts — one function by a 1:1 ratio, the other
// by a 1:2 ratio — XOR-folds each part down to 5 bits, and concatenates the
// two 5-bit results into a 10-bit filter index. A lookup reports a hit only
// when every hashed bit is set, so the filter can report false positives but
// never false negatives.
package bloom

import "fmt"

// IndexBits is the width of a filter index produced by each hash function.
const IndexBits = 10

// FilterBits is the paper's filter size: 2^IndexBits = 1024 bits.
const FilterBits = 1 << IndexBits

// Filter is a Bloom filter over granule numbers.
type Filter struct {
	bits     [FilterBits / 64]uint64
	inWidth  int // significant bits of the granule number
	popCount int // number of set bits, for occupancy reporting
}

// New creates a filter for granule numbers of the given bit width
// (e.g. 33 for VA[47:15] at 32 KiB granularity, 24 for VA[47:24] at 16 MiB).
// It panics if width is not in (0, 64]; widths are fixed by the filter
// configuration, so an invalid width is a programming error.
func New(granuleBits int) *Filter {
	if granuleBits <= 0 || granuleBits > 64 {
		panic(fmt.Sprintf("bloom: invalid granule width %d", granuleBits))
	}
	return &Filter{inWidth: granuleBits}
}

// xorFold folds x down to width bits by XOR-ing successive width-bit chunks.
func xorFold(x uint64, width int) uint64 {
	mask := uint64(1)<<width - 1
	var out uint64
	for x != 0 {
		out ^= x & mask
		x >>= uint(width)
	}
	return out
}

// xorFold5 is xorFold specialized to the 5-bit fold every hash uses: a
// branch-free logarithmic fold (each shift is a multiple of 5, so chunk
// boundaries stay aligned) that computes the identical result without the
// data-dependent loop. The equivalence is pinned by TestXorFold5.
func xorFold5(x uint64) uint64 {
	x ^= x >> 40
	x ^= x >> 20
	x ^= x >> 10
	x ^= x >> 5
	return x & (1<<(IndexBits/2) - 1)
}

// hash computes the 10-bit filter index for the hash function that assigns
// the low `lowBits` of the granule to one partition and the rest to the
// other. Each partition XOR-folds to 5 bits; the partitions concatenate.
func (f *Filter) hash(granule uint64, lowBits int) uint64 {
	granule &= uint64(1)<<f.inWidth - 1
	low := granule & (uint64(1)<<lowBits - 1)
	high := granule >> uint(lowBits)
	return xorFold5(high)<<(IndexBits/2) | xorFold5(low)
}

// Indices returns the two filter indices for a granule: hash function 1
// partitions the bits 1:1, hash function 2 partitions them 1:2.
func (f *Filter) Indices(granule uint64) (i1, i2 uint64) {
	return f.hash(granule, f.inWidth/2), f.hash(granule, f.inWidth/3)
}

// Insert sets the filter bits for the granule.
func (f *Filter) Insert(granule uint64) {
	i1, i2 := f.Indices(granule)
	f.setBit(i1)
	f.setBit(i2)
}

// Contains reports whether the granule may have been inserted. A false
// return is definitive (no false negatives).
func (f *Filter) Contains(granule uint64) bool {
	i1, i2 := f.Indices(granule)
	return f.bit(i1) && f.bit(i2)
}

// Clear resets the filter to empty. The OS clears filters at address space
// creation and when rebuilding a filter that has accumulated stale bits.
func (f *Filter) Clear() {
	f.bits = [FilterBits / 64]uint64{}
	f.popCount = 0
}

// Occupancy returns the fraction of filter bits that are set.
func (f *Filter) Occupancy() float64 {
	return float64(f.popCount) / FilterBits
}

// GranuleBits returns the configured granule width.
func (f *Filter) GranuleBits() int { return f.inWidth }

// Load copies another filter's contents into f. The hardware loads the two
// OS-maintained filters into per-core filter storage on context switch; Load
// models that copy. It panics on mismatched granule widths.
func (f *Filter) Load(src *Filter) {
	if src.inWidth != f.inWidth {
		panic("bloom: loading filter with mismatched granularity")
	}
	f.bits = src.bits
	f.popCount = src.popCount
}

// Words returns the filter contents as raw 64-bit words (for checkpointing
// and for modelling the in-memory OS copy).
func (f *Filter) Words() [FilterBits / 64]uint64 { return f.bits }

// CorruptBit forces filter bit i to the given value, modelling a soft
// error in the filter SRAM. It returns whether the bit changed. Setting a
// bit can only widen the candidate set (extra false positives); clearing
// one can introduce false negatives, so callers that clear bits must
// rebuild the filter from the authoritative OS ranges before the filter is
// consulted again (see osmodel.Kernel.RebuildFilter). It panics if i is
// out of range — fault injectors pick bits from [0, FilterBits).
func (f *Filter) CorruptBit(i uint64, set bool) bool {
	if i >= FilterBits {
		panic(fmt.Sprintf("bloom: corrupt bit %d out of range", i))
	}
	w, b := i/64, uint64(1)<<(i%64)
	present := f.bits[w]&b != 0
	if present == set {
		return false
	}
	if set {
		f.bits[w] |= b
		f.popCount++
	} else {
		f.bits[w] &^= b
		f.popCount--
	}
	return true
}

func (f *Filter) setBit(i uint64) {
	w, b := i/64, i%64
	if f.bits[w]&(1<<b) == 0 {
		f.bits[w] |= 1 << b
		f.popCount++
	}
}

func (f *Filter) bit(i uint64) bool {
	return f.bits[i/64]&(1<<(i%64)) != 0
}
