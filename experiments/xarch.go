package experiments

import (
	"fmt"

	"hybridvc"
	"hybridvc/internal/baseline"
	"hybridvc/internal/core"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
)

// xarchOrgs are the translation architectures the comparison lab runs:
// the conventional TLB baseline, the paper's hybrid design (Bloom filter +
// many-segment delayed translation), and the two typed-payload designs —
// Victima-style cached translation blocks and the exact reverse-lookup
// table — which both steal LLC capacity from data instead of adding
// dedicated translation storage.
var xarchOrgs = []hybridvc.Organization{
	hybridvc.Baseline, hybridvc.HybridManySegSC, hybridvc.Victima, hybridvc.RLTVC,
}

// XArch compares the translation architectures head to head on the parity
// workloads: performance and translation energy alongside each design's
// mechanism counters — front-end walks avoided, metadata blocks served
// from the data caches, blocks installed and evicted (the capacity
// competition), and synonym-filter false positives (zero by construction
// for the exact reverse-lookup table, the fig4/table2-style comparison
// point against the Bloom filter).
func XArch(s Scale) (*stats.Table, error) {
	insns := s.pick(30_000, 200_000)
	simCfg := sim.DefaultConfig()
	simCfg.Timeslice = 10_000

	var cells []Cell
	for _, org := range xarchOrgs {
		for _, wl := range parityWorkloads {
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("xarch/%s/%s", wl, org),
				Config:       hybridvc.Config{Org: org, Cores: 1, Sim: simCfg},
				Workloads:    []string{wl},
				Instructions: insns,
				Extract:      xarchRow(string(org), wl),
			})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Translation architectures: cached translation blocks and reverse-lookup records vs TLB and Bloom filter",
		"org", "workload", "cycles", "insns", "ipc", "xlat_pj",
		"walks", "cached_hits", "fills", "evictions", "filter_fps")
	for _, r := range results {
		t.AddRow(r.Value.([]string)...)
	}
	return t, nil
}

// xarchRow extracts one cell's mechanism counters while the system is
// alive. Columns without a counterpart in an organization render "-".
func xarchRow(org, wl string) func(*hybridvc.System, sim.Report) (any, error) {
	return func(sys *hybridvc.System, rep sim.Report) (any, error) {
		walks, cached, fills, evictions, fps := "-", "-", "-", "-", "-"
		switch m := sys.Mem.(type) {
		case *baseline.Conventional:
			walks = fmt.Sprintf("%d", m.TLBMissWalks.Value())
		case *baseline.Victima:
			walks = fmt.Sprintf("%d", m.TLBMissWalks.Value())
			cached = fmt.Sprintf("%d", m.CachedXlatHits.Value())
			fills = fmt.Sprintf("%d", m.XlatFills.Value())
			evictions = fmt.Sprintf("%d", m.XlatEvictions.Value())
		case *core.RLTVC:
			walks = fmt.Sprintf("%d", m.RLTWalks.Value())
			cached = fmt.Sprintf("%d", m.CachedRecordHits.Value())
			fills = fmt.Sprintf("%d", m.RecordFills.Value())
			evictions = fmt.Sprintf("%d", m.RecordEvictions.Value())
			fps = fmt.Sprintf("%d", m.FalsePositives.Value())
		case *core.HybridMMU:
			fps = fmt.Sprintf("%d", m.FalsePositives.Value())
		}
		return []string{
			org, wl,
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%d", rep.Instructions),
			fmt.Sprintf("%.6f", rep.IPC),
			fmt.Sprintf("%.3f", rep.TranslationEnergyPJ),
			walks, cached, fills, evictions, fps,
		}, nil
	}
}
