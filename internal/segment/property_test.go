package segment

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridvc/internal/addr"
	"hybridvc/internal/mem"
)

// TestManagerMatchesReferenceUnderChurn drives random allocate/free/lookup
// traffic and cross-checks LookupSoft and the hardware tree walk against a
// brute-force reference.
func TestManagerMatchesReferenceUnderChurn(t *testing.T) {
	alloc := mem.NewAllocator(1 << 32)
	m := NewManager(NewNodeArena(alloc))
	asid := addr.MakeASID(0, 1)
	rng := rand.New(rand.NewSource(51))

	type ref struct {
		seg *Segment
	}
	var live []ref

	overlaps := func(base addr.VA, length uint64) bool {
		for _, r := range live {
			s := r.seg
			if base < s.Base+addr.VA(s.Length) && s.Base < base+addr.VA(length) {
				return true
			}
		}
		return false
	}
	refLookup := func(va addr.VA) *Segment {
		for _, r := range live {
			if r.seg.Contains(asid, va) {
				return r.seg
			}
		}
		return nil
	}

	for step := 0; step < 600; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			frames := uint64(rng.Intn(64) + 1)
			base := addr.VA(rng.Uint64()%(1<<30)) & ^addr.VA(addr.PageSize-1)
			pa, ok := alloc.AllocContiguous(frames)
			if !ok {
				continue
			}
			seg, err := m.Allocate(asid, base, frames*addr.PageSize, pa, addr.PermRW)
			if overlaps(base, frames*addr.PageSize) {
				if err == nil {
					t.Fatalf("step %d: overlap accepted", step)
				}
				alloc.Free(pa, frames)
				continue
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live, ref{seg})
		default:
			i := rng.Intn(len(live))
			s := live[i].seg
			m.Free(s)
			alloc.Free(s.PABase, s.Pages())
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Cross-check a few random addresses.
		for probe := 0; probe < 5; probe++ {
			va := addr.VA(rng.Uint64() % (1 << 30))
			want := refLookup(va)
			got, ok := m.LookupSoft(asid, va)
			if (want != nil) != ok || (ok && got != want) {
				t.Fatalf("step %d: LookupSoft(%#x) = %v,%v want %v", step, uint64(va), got, ok, want)
			}
			id, _ := m.Tree.Lookup(asid, va)
			if want == nil {
				if id != NoID && m.Table.Get(id).Contains(asid, va) {
					t.Fatalf("step %d: tree found a segment for unmapped %#x", step, uint64(va))
				}
			} else if id != want.ID {
				// The tree returns the predecessor; it must be the
				// covering segment when one exists.
				t.Fatalf("step %d: tree ID %d want %d", step, id, want.ID)
			}
		}
	}
}

// TestSegCacheNeverReturnsWrongTranslation: whatever the fill history, a
// SegCache hit must agree with the owning segment.
func TestSegCacheNeverReturnsWrongTranslation(t *testing.T) {
	alloc := mem.NewAllocator(1 << 32)
	m := NewManager(NewNodeArena(alloc))
	asid := addr.MakeASID(0, 1)
	rng := rand.New(rand.NewSource(61))
	// Many small adjacent segments: granules straddle boundaries.
	var segs []*Segment
	va := addr.VA(0)
	for i := 0; i < 64; i++ {
		frames := uint64(rng.Intn(200) + 1)
		pa, _ := alloc.AllocContiguous(frames)
		s, err := m.Allocate(asid, va, frames*addr.PageSize, pa, addr.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, s)
		va += addr.VA(frames * addr.PageSize)
	}
	sc := NewSegCache(SegCacheEntries)
	total := uint64(va)
	for step := 0; step < 50000; step++ {
		a := addr.VA(rng.Uint64() % total)
		if seg, ok := sc.Lookup(asid, a); ok {
			want, _ := m.LookupSoft(asid, a)
			if seg != want {
				t.Fatalf("step %d: SC returned %v want %v for %#x", step, seg, want, uint64(a))
			}
		} else {
			want, _ := m.LookupSoft(asid, a)
			sc.Fill(asid, a, want)
		}
	}
}

// TestKeyOrderingProperty: tree keys order primarily by ASID, then by VA —
// required for predecessor routing to never cross address spaces.
func TestKeyOrderingProperty(t *testing.T) {
	f := func(a1, a2 uint16, v1, v2 uint64) bool {
		s1 := addr.ASID(a1)
		s2 := addr.ASID(a2)
		va1 := addr.VA(v1 % (1 << addr.VABits))
		va2 := addr.VA(v2 % (1 << addr.VABits))
		k1, k2 := MakeKey(s1, va1), MakeKey(s2, va2)
		switch {
		case s1 < s2:
			return k1 < k2
		case s1 > s2:
			return k1 > k2
		case va1 < va2:
			return k1 < k2
		case va1 > va2:
			return k1 > k2
		default:
			return k1 == k2
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
