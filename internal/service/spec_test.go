package service

import (
	"strings"
	"testing"
)

// TestNormalizeCanonicalizes checks the content-addressing contract: a
// spec relying on defaults and a spec spelling the same defaults out
// explicitly must normalize to the same fields and hash to the same key.
func TestNormalizeCanonicalizes(t *testing.T) {
	defaulted := JobSpec{}
	explicit := JobSpec{
		Kind: KindSim, Org: "hybrid-manyseg+sc", Workloads: []string{"gups"},
		Instructions: 200_000, Cores: 1, Seed: 1, Interval: 10_000,
	}
	if err := defaulted.Normalize(); err != nil {
		t.Fatalf("defaulted: %v", err)
	}
	if err := explicit.Normalize(); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	if dk, ek := defaulted.CacheKey(), explicit.CacheKey(); dk != ek {
		t.Errorf("defaulted key %s != explicit key %s", dk, ek)
	}
}

// TestCacheKeySensitivity: any behaviourally meaningful field change must
// move the key; two normalizations of the same spec must not.
func TestCacheKeySensitivity(t *testing.T) {
	base := JobSpec{}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	baseKey := base.CacheKey()
	if again := base.CacheKey(); again != baseKey {
		t.Errorf("key not stable: %s then %s", baseKey, again)
	}

	variants := []JobSpec{
		{Seed: 2},
		{Instructions: 100_000},
		{Org: "baseline"},
		{Workloads: []string{"stream"}},
		{Interval: 5_000},
		{Kind: KindSweep, Experiment: "latency"},
	}
	seen := map[string]int{baseKey: -1}
	for i, v := range variants {
		if err := v.Normalize(); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		k := v.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d (key %s)", i, prev, k)
		}
		seen[k] = i
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Kind: "batch"}, "unknown job kind"},
		{"unknown org", JobSpec{Org: "quantum"}, "unknown organization"},
		{"unknown workload", JobSpec{Workloads: []string{"nope"}}, "unknown workload"},
		{"ovc multicore", JobSpec{Org: "ovc", Cores: 2}, "single-core"},
		{"sweep fields on sim", JobSpec{Experiment: "fig9"}, "sweep-job fields"},
		{"sweep without experiment", JobSpec{Kind: KindSweep}, "needs an experiment"},
		{"unknown experiment", JobSpec{Kind: KindSweep, Experiment: "fig99"}, "unknown experiment"},
		{"bad scale", JobSpec{Kind: KindSweep, Experiment: "fig9", Scale: "huge"}, "unknown scale"},
		{"sim fields on sweep", JobSpec{Kind: KindSweep, Experiment: "fig9", Seed: 3}, "not meaningful"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
