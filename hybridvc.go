// Package hybridvc is a simulator for hybrid virtual caching with
// efficient synonym filtering and scalable delayed translation, a
// reproduction of Park, Heo and Huh (ISCA 2016).
//
// The package is the public facade over the internal substrates: it builds
// complete systems (OS model + memory system organization + timing cores),
// loads named workloads, and runs simulations:
//
//	sys, err := hybridvc.New(hybridvc.Config{Org: hybridvc.HybridManySegSC})
//	if err != nil { ... }
//	if err := sys.LoadWorkload("gups"); err != nil { ... }
//	report, err := sys.Run(1_000_000)
//
// Organizations cover the paper's evaluated design points: the
// conventional physically addressed baseline, delayed page-granularity
// TLBs of various sizes, many-segment delayed translation with and
// without the segment cache, an ideal (free) TLB, RMM- and direct-
// segment-style range translation, an Enigma-style intermediate address
// design, and the virtualized variants (2D-walk baseline and virtualized
// hybrid).
package hybridvc

import (
	"fmt"

	"hybridvc/internal/baseline"
	"hybridvc/internal/core"
	"hybridvc/internal/fault"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/sim"
	"hybridvc/internal/virt"
	"hybridvc/internal/workload"
)

// Organization selects the memory system under test.
type Organization string

// The evaluated organizations.
const (
	// Baseline is the conventional physically addressed system with a
	// two-level TLB (Table IV).
	Baseline Organization = "baseline"
	// Ideal has free address translation (the paper's "ideal TLB").
	Ideal Organization = "ideal"
	// HybridDelayedTLB is hybrid virtual caching with a fixed-granularity
	// delayed TLB (size set by Config.DelayedTLBEntries).
	HybridDelayedTLB Organization = "hybrid-dtlb"
	// HybridManySeg is hybrid virtual caching with many-segment delayed
	// translation, without the segment cache.
	HybridManySeg Organization = "hybrid-manyseg"
	// HybridManySegSC adds the 128-entry segment cache.
	HybridManySegSC Organization = "hybrid-manyseg+sc"
	// Enigma is the intermediate-address-space design: delayed
	// page-granularity translation without a synonym filter.
	Enigma Organization = "enigma"
	// RMM is redundant memory mapping: 32 pre-L1 range entries.
	RMM Organization = "rmm"
	// DirectSegment is a single base/limit/offset segment per process.
	DirectSegment Organization = "direct-segment"
	// OVC is opportunistic virtual caching: only the L1 is virtual, so
	// L1 misses still translate (energy-saving prior work; single-core).
	OVC Organization = "ovc"
	// Virt2D is the virtualized baseline with nested (2D) page walks and
	// a nested-TLB translation cache.
	Virt2D Organization = "virt-2d"
	// VirtHybrid is the virtualized hybrid design (Section V).
	VirtHybrid Organization = "virt-hybrid"
	// Victima backs the conventional two-level TLB with cached translation
	// blocks: TLB misses probe the L2/LLC for the PTE before walking, and
	// walks install their leaves into the caches as typed-payload lines.
	Victima Organization = "victima"
	// RLTVC replaces the hybrid design's Bloom synonym filter with an
	// exact reverse-lookup table whose record blocks are cached in the
	// data hierarchy (zero false positives, capacity stolen from data).
	RLTVC Organization = "rlt-vc"
)

// Organizations lists every selectable organization.
func Organizations() []Organization {
	return []Organization{
		Baseline, Ideal, HybridDelayedTLB, HybridManySeg, HybridManySegSC,
		Enigma, RMM, DirectSegment, OVC, Virt2D, VirtHybrid, Victima, RLTVC,
	}
}

// Virtualized reports whether the organization runs inside a VM.
func (o Organization) Virtualized() bool { return o == Virt2D || o == VirtHybrid }

// Config assembles a system.
type Config struct {
	// Org selects the memory system organization (default HybridManySegSC).
	Org Organization
	// Cores is the hardware core count (default 1).
	Cores int
	// PhysBytes is the physical (or machine) memory size (default 16 GiB).
	PhysBytes uint64
	// GuestBytes is the VM size for virtualized organizations
	// (default 4 GiB).
	GuestBytes uint64
	// DelayedTLBEntries sizes the delayed TLB for HybridDelayedTLB and
	// Enigma (default 1024).
	DelayedTLBEntries int
	// IndexCacheBytes sizes the index cache (default 32 KiB).
	IndexCacheBytes int
	// LLCBytes overrides the shared LLC capacity (default 2 MiB).
	LLCBytes int
	// Sim configures the timing harness.
	Sim sim.Config
	// Seed drives all workload randomness (default 1).
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Org == "" {
		c.Org = HybridManySegSC
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.PhysBytes == 0 {
		c.PhysBytes = 16 << 30
	}
	if c.GuestBytes == 0 {
		c.GuestBytes = 4 << 30
	}
	if c.DelayedTLBEntries == 0 {
		c.DelayedTLBEntries = 1024
	}
	if c.IndexCacheBytes == 0 {
		c.IndexCacheBytes = 32 << 10
	}
	if c.Sim.CPU.ROBSize == 0 {
		c.Sim = sim.DefaultConfig()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// System is a ready-to-run simulated machine.
type System struct {
	cfg Config
	// Kernel is the operating system (the guest kernel when virtualized).
	Kernel *osmodel.Kernel
	// Mem is the memory system under test.
	Mem core.MemSystem
	// Hypervisor and VM are set for virtualized organizations.
	Hypervisor *virt.Hypervisor
	VM         *virt.VM

	gens []*workload.Generator
	// LastSim is the harness from the most recent Run.
	LastSim *sim.Simulator
}

// New builds a system for the configuration.
func New(cfg Config) (*System, error) {
	cfg.fillDefaults()
	s := &System{cfg: cfg}

	if cfg.Org.Virtualized() {
		s.Hypervisor = virt.NewHypervisor(cfg.PhysBytes)
		vm, err := s.Hypervisor.NewVM(cfg.GuestBytes, 4)
		if err != nil {
			return nil, err
		}
		s.VM = vm
		s.Kernel = vm.Kernel
	} else {
		s.Kernel = osmodel.NewKernel(osmodel.Config{PhysBytes: cfg.PhysBytes})
	}

	build, ok := orgTable[cfg.Org]
	if !ok {
		return nil, fmt.Errorf("hybridvc: unknown organization %q", cfg.Org)
	}
	ms, err := build(cfg, s)
	if err != nil {
		return nil, err
	}
	s.Mem = ms
	return s, nil
}

// orgTable declaratively maps each organization to its memory system
// builder. Every organization is stage wiring over the shared pipeline
// engine (see internal/pipeline), so adding a design point is one table
// entry plus its FrontEnd/Backend hooks.
var orgTable = map[Organization]func(Config, *System) (core.MemSystem, error){
	Baseline: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewConventional(baselineConfig(cfg), s.Kernel), nil
	},
	Ideal: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewIdeal(baselineConfig(cfg), s.Kernel), nil
	},
	RMM: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewRMM(baselineConfig(cfg), s.Kernel), nil
	},
	DirectSegment: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewDirectSegment(baselineConfig(cfg), s.Kernel), nil
	},
	OVC: func(cfg Config, s *System) (core.MemSystem, error) {
		if cfg.Cores != 1 {
			return nil, fmt.Errorf("hybridvc: the OVC model is single-core")
		}
		return baseline.NewOVC(baselineConfig(cfg), s.Kernel), nil
	},
	HybridDelayedTLB: func(cfg Config, s *System) (core.MemSystem, error) {
		return core.NewHybridMMU(hybridTLBConfig(cfg, false), s.Kernel), nil
	},
	Enigma: func(cfg Config, s *System) (core.MemSystem, error) {
		return core.NewHybridMMU(hybridTLBConfig(cfg, true), s.Kernel), nil
	},
	HybridManySeg: func(cfg Config, s *System) (core.MemSystem, error) {
		return core.NewHybridMMU(hybridSegConfig(cfg, false), s.Kernel), nil
	},
	HybridManySegSC: func(cfg Config, s *System) (core.MemSystem, error) {
		return core.NewHybridMMU(hybridSegConfig(cfg, true), s.Kernel), nil
	},
	Virt2D: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewVirt2D(baselineConfig(cfg), s.VM), nil
	},
	Victima: func(cfg Config, s *System) (core.MemSystem, error) {
		return baseline.NewVictima(baselineConfig(cfg), s.Kernel), nil
	},
	RLTVC: func(cfg Config, s *System) (core.MemSystem, error) {
		return core.NewRLTVC(hybridSegConfig(cfg, true), s.Kernel), nil
	},
	VirtHybrid: func(cfg Config, s *System) (core.MemSystem, error) {
		vc := core.DefaultVirtHybridConfig(cfg.Cores)
		applyLLC(&vc.Hier.LLC.SizeBytes, cfg.LLCBytes)
		vc.IndexCacheBytes = cfg.IndexCacheBytes
		return core.NewVirtHybridMMU(vc, s.VM, s.Hypervisor), nil
	},
}

// baselineConfig is the Table IV substrate with the LLC override applied.
func baselineConfig(cfg Config) baseline.Config {
	bc := baseline.DefaultConfig(cfg.Cores)
	applyLLC(&bc.Hier.LLC.SizeBytes, cfg.LLCBytes)
	return bc
}

// hybridTLBConfig configures the hybrid MMU with page-granularity delayed
// translation; bypass drops the synonym filter (the Enigma design point).
func hybridTLBConfig(cfg Config, bypass bool) core.HybridConfig {
	hc := core.DefaultHybridConfig(cfg.Cores)
	applyLLC(&hc.Hier.LLC.SizeBytes, cfg.LLCBytes)
	hc.Delayed = core.DelayedPageTLB
	hc.DelayedTLBEntries = cfg.DelayedTLBEntries
	hc.WithSegmentCache = false
	hc.FilterBypass = bypass
	return hc
}

// hybridSegConfig configures the hybrid MMU with many-segment delayed
// translation, with or without the segment cache.
func hybridSegConfig(cfg Config, sc bool) core.HybridConfig {
	hc := core.DefaultHybridConfig(cfg.Cores)
	applyLLC(&hc.Hier.LLC.SizeBytes, cfg.LLCBytes)
	hc.Delayed = core.DelayedSegments
	hc.WithSegmentCache = sc
	hc.IndexCacheBytes = cfg.IndexCacheBytes
	return hc
}

func applyLLC(dst *int, override int) {
	if override > 0 {
		*dst = override
	}
}

// AttachChecker attaches a runtime invariant checker wired for the
// system's organization: the hybrid designs expose their synonym and
// delayed TLBs and reconcile the false-positive counter, the virtualized
// designs resolve guest-physical addresses through the VM, OVC audits
// only its virtual L1 (split naming boundary), and filter-bypass
// (Enigma) permits shared pages under virtual names. The checker probes
// the memory system (composed with any existing probe) and its Check
// method may be invoked at any point between accesses — the fault
// injector does so after every injection.
func (s *System) AttachChecker() (*fault.Checker, error) {
	cfg := fault.CheckerConfig{Mem: s.Mem, Kernel: s.Kernel}
	switch m := s.Mem.(type) {
	case *core.HybridMMU:
		cfg.AllowSharedVirtual = s.cfg.Org == Enigma
		for i := 0; i < s.cfg.Cores; i++ {
			cfg.TLBs = append(cfg.TLBs, fault.NamedTLB{Name: fmt.Sprintf("syn-tlb%d", i), T: m.SynTLB(i)})
		}
		if d := m.DelayedTLB(); d != nil {
			cfg.TLBs = append(cfg.TLBs, fault.NamedTLB{Name: "delayed-tlb", T: d})
		}
		cfg.Extra = []fault.Recon{{
			Label: "hybrid false positives",
			Stat:  func() uint64 { return m.FalsePositives.Value() },
			Event: func(p *core.CountingProbe) uint64 { return p.FalsePositives },
		}}
	case *core.VirtHybridMMU:
		cfg.TranslateGPA = s.VM.TranslateGPA
		cfg.NestedWalks = true
		cfg.Extra = []fault.Recon{{
			Label: "virt-hybrid false positives",
			Stat:  func() uint64 { return m.FalsePositives.Value() },
			Event: func(p *core.CountingProbe) uint64 { return p.FalsePositives },
		}}
	case *core.RLTVC:
		for i := 0; i < s.cfg.Cores; i++ {
			cfg.TLBs = append(cfg.TLBs, fault.NamedTLB{Name: fmt.Sprintf("rlt%d", i), T: m.RLT(i)})
		}
		cfg.PayloadCoherence = m.PayloadCoherence
		cfg.Extra = []fault.Recon{{
			Label: "rlt-vc false positives",
			Stat:  func() uint64 { return m.FalsePositives.Value() },
			Event: func(p *core.CountingProbe) uint64 { return p.FalsePositives },
		}}
	case *baseline.Victima:
		for i := 0; i < s.cfg.Cores; i++ {
			cfg.TLBs = append(cfg.TLBs,
				fault.NamedTLB{Name: fmt.Sprintf("victima-l1tlb%d", i), T: m.TLB(i).L1},
				fault.NamedTLB{Name: fmt.Sprintf("victima-l2tlb%d", i), T: m.TLB(i).L2})
		}
		cfg.PayloadCoherence = m.PayloadCoherence
	case *baseline.OVC:
		cfg.SplitL1 = true
	case *baseline.Virt2D:
		cfg.TranslateGPA = s.VM.TranslateGPA
		cfg.NestedWalks = true
	}
	ch, err := fault.NewChecker(cfg)
	if err != nil {
		return nil, err
	}
	s.Mem.SetProbe(pipeline.Tee(s.Mem.Probe(), ch))
	return ch, nil
}

// AttachFaults attaches a deterministic fault injector: it observes every
// reference through the probe layer and also arms transient page-walk
// failures through the pipeline's walk-fault hook. Attach a checker
// FIRST (AttachChecker, or use InjectFaults) so its event counts are
// current when the injector triggers a post-fault check.
func (s *System) AttachFaults(cfg fault.Config) *fault.Injector {
	inj := fault.NewInjector(cfg, s.Kernel)
	if bh, ok := s.Mem.(core.BaseHolder); ok {
		bh.BaseState().SetWalkFaulter(inj)
	}
	s.Mem.SetProbe(pipeline.Tee(s.Mem.Probe(), inj))
	return inj
}

// InjectFaults attaches a checker-audited fault injector: every injected
// fault is followed by a full invariant check, and the first violation is
// retained on both the injector and the checker.
func (s *System) InjectFaults(cfg fault.Config) (*fault.Injector, *fault.Checker, error) {
	ch, err := s.AttachChecker()
	if err != nil {
		return nil, nil, err
	}
	inj := s.AttachFaults(cfg)
	inj.SetChecker(ch)
	return inj, ch, nil
}

// LoadWorkload instantiates the named workload's processes in the system.
func (s *System) LoadWorkload(name string) error {
	spec, err := workload.Get(name)
	if err != nil {
		return err
	}
	return s.LoadSpec(spec)
}

// LoadSpec instantiates a custom workload spec.
func (s *System) LoadSpec(spec workload.Spec) error {
	gens, err := workload.NewGroup(spec, s.Kernel, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.gens = append(s.gens, gens...)
	if ds, ok := s.Mem.(*baseline.DirectSegment); ok {
		for _, g := range gens {
			ds.AssignSegment(g.Proc)
		}
	}
	return nil
}

// Generators returns the loaded workload generators.
func (s *System) Generators() []*workload.Generator { return s.gens }

// Run simulates n instructions per core and returns the report.
//
// Repeated calls CONTINUE the loaded workloads: generators keep their
// stream position (and the memory system keeps its warmed caches, TLBs
// and page tables), while a fresh sim.Simulator — fresh timing cores and
// cycle counts — is built for each call. Two back-to-back Run(n) calls
// therefore measure a cold window followed by a warm window of the same
// stream, not the same window twice; the second report's cycle count is
// not comparable to a fresh system's. For independent, reproducible
// measurements build a new System per run (the experiment registry's
// sweep cells do exactly that).
func (s *System) Run(n uint64) (sim.Report, error) {
	if len(s.gens) == 0 {
		return sim.Report{}, fmt.Errorf("hybridvc: no workload loaded")
	}
	s.LastSim = sim.New(s.cfg.Sim, s.Mem, s.gens)
	return s.LastSim.Run(n), nil
}
