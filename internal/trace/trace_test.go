package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, err := workload.New(workload.Specs["mcf"], k, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a stream, then replay and compare against a twin generator.
	var buf bytes.Buffer
	if err := Capture(&buf, g, 5000); err != nil {
		t.Fatal(err)
	}

	k2 := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	twin, _ := workload.New(workload.Specs["mcf"], k2, 11)
	r := NewReader(&buf)
	for i := 0; i < 5000; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := twin.Next(); got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if r.Count() != 5000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestCompactEncoding(t *testing.T) {
	// Sequential streams must compress to a few bytes per record.
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, _ := workload.New(workload.Specs["stream"], k, 3)
	var buf bytes.Buffer
	if err := Capture(&buf, g, 10000); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 3.0 {
		t.Errorf("stream trace uses %.1f bytes/record, want <= 3", perRecord)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOTATRACE"))
	_, err := r.Next()
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic through the chain", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 {
		t.Errorf("err = %#v, want *CorruptError at offset 0", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, _ := workload.New(workload.Specs["gups"], k, 5)
	var buf bytes.Buffer
	if err := Capture(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	// Chop the last bytes: reading to the end must yield a typed corrupt-
	// record error or a clean EOF at a record boundary, never a silent
	// wrong record.
	data := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(data))
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == io.EOF && r.Count() == 100 {
		t.Error("truncated trace replayed completely")
	}
	if err != io.EOF {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("mid-record truncation yielded %v, want *CorruptError", err)
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncation cause %v, want io.ErrUnexpectedEOF", ce.Err)
		}
	}
}

// captureSmall returns a short valid trace for corruption tests.
func captureSmall(t *testing.T, n uint64) []byte {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 8 << 30})
	g, err := workload.New(workload.Specs["mcf"], k, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Capture(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a reader and returns the terminating error.
func readAll(data []byte) (uint64, error) {
	r := NewReader(bytes.NewReader(data))
	for {
		if _, err := r.Next(); err != nil {
			return r.Count(), err
		}
	}
}

// TestCorruptFlagByte proves an undefined flag bit — the cheapest way a
// bit flip manifests — is reported as a CorruptError whose offset lands
// inside the damaged region.
func TestCorruptFlagByte(t *testing.T) {
	data := captureSmall(t, 50)
	pos := len(data) / 2
	data[pos] |= 0x80 // no defined record sets the high flag bit

	n, err := readAll(data)
	if err == io.EOF && n == 50 {
		t.Fatal("bit-flipped trace replayed completely")
	}
	if err != io.EOF {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("corruption yielded %v, want *CorruptError", err)
		}
		if ce.Offset < 5 || ce.Offset > uint64(len(data)) {
			t.Errorf("offset %d outside the stream body [5, %d]", ce.Offset, len(data))
		}
	}
}

// TestTruncatedHeader proves a torn header (shorter than the magic) is
// corrupt, not a clean EOF — only the empty stream gets io.EOF.
func TestTruncatedHeader(t *testing.T) {
	_, err := readAll([]byte("HVC"))
	var ce *CorruptError
	if !errors.As(err, &ce) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("torn header yielded %v, want *CorruptError wrapping ErrUnexpectedEOF", err)
	}
}

// TestNonCanonicalVAIsCorrupt proves a delta that walks the replay
// cursor outside the canonical virtual address space is rejected: no
// generator can have produced it, so the stream is damaged even though
// the varint itself decodes.
func TestNonCanonicalVAIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(flagMem)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(uint64(1)<<addr.VABits))
	buf.Write(tmp[:n])

	_, err := readAll(buf.Bytes())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("non-canonical VA yielded %v, want *CorruptError", err)
	}
	if ce.Offset != uint64(len(magic)) {
		t.Errorf("offset %d, want %d (start of the bad record)", ce.Offset, len(magic))
	}
	if !strings.Contains(ce.Reason, "non-canonical") {
		t.Errorf("reason %q does not diagnose the address", ce.Reason)
	}
}

func TestEmptyTraceEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(workload.Insn{})
	w.Write(workload.Insn{IsMem: true, VA: 0x1000})
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}
