package core

import (
	"math/rand"
	"testing"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/osmodel"
)

// smallHybridConfig shrinks caches so evictions and LLC misses happen fast.
func smallHybridConfig(cores int, kind DelayedKind, withSC bool) HybridConfig {
	cfg := DefaultHybridConfig(cores)
	cfg.Hier.L1I = cache.Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, HitLatency: 2}
	cfg.Hier.L1D = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4}
	cfg.Hier.L2 = cache.Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, HitLatency: 6}
	cfg.Hier.LLC = cache.Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 8, HitLatency: 27}
	cfg.Delayed = kind
	cfg.WithSegmentCache = withSC
	cfg.DelayedTLBEntries = 1024
	return cfg
}

func setupHybrid(t *testing.T, kind DelayedKind, withSC bool) (*HybridMMU, *osmodel.Kernel, *osmodel.Process) {
	t.Helper()
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	m := NewHybridMMU(smallHybridConfig(1, kind, withSC), k)
	p, err := k.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	return m, k, p
}

func TestNonSynonymCachedVirtually(t *testing.T) {
	m, _, p := setupHybrid(t, DelayedSegments, true)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	res := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if res.Fault {
		t.Fatal("unexpected fault")
	}
	if !res.LLCMiss {
		t.Fatal("cold access did not miss LLC")
	}
	// The block must be cached under ASID+VA, not PA.
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, va)) == nil {
		t.Error("block not cached under virtual name")
	}
	pa, _ := p.PT.Translate(va)
	if m.Hier.LLC().Probe(addr.PhysName(pa)) != nil {
		t.Error("non-synonym block cached under physical name")
	}
	// No synonym TLB activity for a non-synonym access.
	if m.SynTLB(0).Stats.Accesses() != 0 {
		t.Error("synonym TLB accessed for a non-synonym address")
	}
	// Warm access hits L1 with no translation at all.
	res2 := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if res2.Latency != 4 || res2.HitLevel != 1 {
		t.Errorf("warm access: %+v", res2)
	}
}

func TestSynonymCachedPhysicallyAndShared(t *testing.T) {
	// The single-name property in action: two processes accessing the
	// same shared page through different VAs must hit the same physical
	// cache line.
	m, k, p1 := setupHybrid(t, DelayedSegments, true)
	p2, _ := k.NewProcess()
	vas, err := k.ShareAnonymous([]*osmodel.Process{p1, p2}, 8*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	r1 := m.Access(Request{Core: 0, Kind: cache.Write, VA: vas[0], Proc: p1})
	if r1.Fault {
		t.Fatal("fault on shared write")
	}
	if m.TrueSynonymAccesses.Value() != 1 {
		t.Fatalf("synonym accesses = %d", m.TrueSynonymAccesses.Value())
	}
	pa, _ := p1.PT.Translate(vas[0])
	if m.Hier.LLC().Probe(addr.PhysName(pa)) == nil {
		t.Fatal("synonym block not cached physically")
	}
	// p2 reads the same data via its own VA: must hit in cache (L1),
	// because both names resolve to the same physical name.
	r2 := m.Access(Request{Core: 0, Kind: cache.Read, VA: vas[1], Proc: p2})
	if r2.LLCMiss {
		t.Error("second process missed on shared data")
	}
	// And no virtual-name copies exist.
	if m.Hier.LLC().Probe(addr.VirtName(p1.ASID, vas[0])) != nil ||
		m.Hier.LLC().Probe(addr.VirtName(p2.ASID, vas[1])) != nil {
		t.Error("synonym data also cached under a virtual name")
	}
}

func TestFalsePositiveCorrection(t *testing.T) {
	m, k, p := setupHybrid(t, DelayedSegments, true)
	// Create a shared region, then find a private page that the filter
	// (falsely) flags.
	if _, err := k.ShareAnonymous([]*osmodel.Process{p}, 64*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	priv, _ := p.Mmap(64<<20, addr.PermRW, osmodel.MmapOpts{})
	var fpVA addr.VA
	found := false
	for off := uint64(0); off < 64<<20; off += addr.PageSize {
		va := priv + addr.VA(off)
		if p.Filter.ProbeQuiet(va) {
			fpVA, found = va, true
			break
		}
	}
	if !found {
		t.Skip("no false positive found in range (filter too clean)")
	}
	res := m.Access(Request{Kind: cache.Read, VA: fpVA, Proc: p})
	if res.Fault {
		t.Fatal("fault on false positive")
	}
	if m.FalsePositives.Value() != 1 {
		t.Fatalf("false positives = %d", m.FalsePositives.Value())
	}
	// Despite the detour, the data is cached virtually.
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, fpVA)) == nil {
		t.Error("false-positive access not cached virtually")
	}
	// The correcting TLB entry makes the next access cheap and keeps it
	// on the virtual path.
	m.Access(Request{Kind: cache.Read, VA: fpVA, Proc: p})
	if m.FalsePositives.Value() != 2 {
		t.Error("second access did not take the corrected TLB path")
	}
	e, ok := m.SynTLB(0).Probe(p.ASID, fpVA.Page())
	if !ok || !e.NonSynonym {
		t.Error("no NonSynonym correction entry installed")
	}
}

func TestDelayedTranslationOnlyOnLLCMiss(t *testing.T) {
	m, _, p := setupHybrid(t, DelayedSegments, false)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if m.DelayedTranslations.Value() != 1 {
		t.Fatalf("delayed translations = %d", m.DelayedTranslations.Value())
	}
	// Hits anywhere in the hierarchy never translate.
	for i := 0; i < 10; i++ {
		m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	}
	if m.DelayedTranslations.Value() != 1 {
		t.Errorf("cache hits triggered delayed translation: %d",
			m.DelayedTranslations.Value())
	}
}

func TestSegmentCacheReducesMissLatency(t *testing.T) {
	run := func(withSC bool) uint64 {
		m, _, p := setupHybrid(t, DelayedSegments, withSC)
		va, _ := p.Mmap(8<<20, addr.PermRW, osmodel.MmapOpts{})
		var total uint64
		// Stream over 2 MiB so every access misses the tiny LLC but stays
		// within one SC granule.
		for off := uint64(0); off < 2<<20; off += 64 {
			res := m.Access(Request{Kind: cache.Read, VA: va + addr.VA(off), Proc: p})
			total += res.Latency
		}
		return total
	}
	withSC, withoutSC := run(true), run(false)
	if withSC >= withoutSC {
		t.Errorf("SC did not reduce latency: %d vs %d", withSC, withoutSC)
	}
}

func TestDelayedPageTLBMode(t *testing.T) {
	m, _, p := setupHybrid(t, DelayedPageTLB, false)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	res := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if res.Fault || !res.LLCMiss {
		t.Fatalf("cold access: %+v", res)
	}
	if m.DelayedTLBMisses.Value() != 1 {
		t.Fatalf("delayed TLB misses = %d", m.DelayedTLBMisses.Value())
	}
	// Another line in the same page misses the LLC but hits the delayed
	// TLB (no page walk).
	res2 := m.Access(Request{Kind: cache.Read, VA: va + 0x340, Proc: p})
	if !res2.LLCMiss {
		t.Skip("line unexpectedly cached")
	}
	if m.DelayedTLBMisses.Value() != 1 {
		t.Errorf("same-page access walked again")
	}
	if res2.Latency >= res.Latency {
		t.Errorf("delayed TLB hit (%d) not cheaper than walk (%d)", res2.Latency, res.Latency)
	}
}

func TestCoWWriteFault(t *testing.T) {
	m, k, p1 := setupHybrid(t, DelayedSegments, true)
	p2, _ := k.NewProcess()
	va1, _ := p1.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	va2, _ := p2.Mmap(addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	if err := k.ContentShare(p2, va2, p1, va1); err != nil {
		t.Fatal(err)
	}
	// Reads work for both, virtually cached, r/o.
	r := m.Access(Request{Kind: cache.Read, VA: va2, Proc: p2})
	if r.Fault {
		t.Fatal("read of content-shared page faulted")
	}
	// A write faults (CoW) and then succeeds with a private frame.
	w := m.Access(Request{Kind: cache.Write, VA: va2, Proc: p2})
	if !w.Fault {
		t.Fatal("write to r/o content-shared page did not fault")
	}
	if k.CoWFaults.Value() != 1 {
		t.Errorf("CoW faults = %d", k.CoWFaults.Value())
	}
	pa1, _ := p1.PT.Translate(va1)
	pa2, _ := p2.PT.Translate(va2)
	if pa1 == pa2 {
		t.Error("write did not break sharing")
	}
	// Subsequent writes proceed without faults.
	w2 := m.Access(Request{Kind: cache.Write, VA: va2, Proc: p2})
	if w2.Fault {
		t.Error("post-CoW write faulted")
	}
}

func TestDemandPagingFault(t *testing.T) {
	m, k, p := setupHybrid(t, DelayedSegments, true)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{Demand: true})
	res := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if !res.Fault {
		t.Fatal("first touch of demand page did not fault")
	}
	if res.Latency < FaultLatency {
		t.Error("fault latency not charged")
	}
	if k.PageFaults.Value() != 1 {
		t.Errorf("page faults = %d", k.PageFaults.Value())
	}
	res2 := m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if res2.Fault {
		t.Error("second access faulted")
	}
}

// checkSingleName verifies the paper's key invariant over the entire
// hierarchy: every physical block is cached under exactly one name.
func checkSingleName(t *testing.T, m *HybridMMU, k *osmodel.Kernel) {
	t.Helper()
	owner := map[addr.PA]addr.Name{}
	check := func(n addr.Name, _ *cache.Line) {
		var pa addr.PA
		if n.Synonym {
			pa = addr.PA(n.Addr)
		} else {
			p := k.Process(n.ASID)
			if p == nil {
				return
			}
			got, ok := p.PT.Translate(addr.VA(n.Addr))
			if !ok {
				t.Errorf("cached line %v has no translation", n)
				return
			}
			pa = got
		}
		if prev, dup := owner[pa]; dup && prev != n {
			t.Fatalf("physical block %#x cached under two names: %v and %v",
				uint64(pa), prev, n)
		}
		owner[pa] = n
	}
	h := m.Hier
	for c := 0; c < h.NumCores(); c++ {
		h.L1D(c).ForEachLine(check)
		h.L1I(c).ForEachLine(check)
		h.L2(c).ForEachLine(check)
	}
	h.LLC().ForEachLine(check)
}

func TestSingleNameInvariantRandomized(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	m := NewHybridMMU(smallHybridConfig(2, DelayedSegments, true), k)
	p1, _ := k.NewProcess()
	p2, _ := k.NewProcess()
	shared, err := k.ShareAnonymous([]*osmodel.Process{p1, p2}, 16*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	priv1, _ := p1.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	priv2, _ := p2.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})

	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 20000; step++ {
		var req Request
		proc, base, size := p1, priv1, uint64(1<<20)
		if rng.Intn(2) == 1 {
			proc, base = p2, priv2
		}
		if rng.Intn(5) == 0 { // shared access
			idx := rng.Intn(2)
			base = shared[idx]
			proc = []*osmodel.Process{p1, p2}[idx]
			size = 16 * addr.PageSize
		}
		req = Request{
			Core: rng.Intn(2),
			Kind: []cache.AccessKind{cache.Read, cache.Write}[rng.Intn(2)],
			VA:   base + addr.VA(rng.Uint64()%size),
			Proc: proc,
		}
		if res := m.Access(req); res.Fault {
			t.Fatalf("unexpected fault at step %d", step)
		}
		if step%2500 == 0 {
			checkSingleName(t, m, k)
			if err := m.Hier.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkSingleName(t, m, k)
}

func TestMarkSharedFlushesVirtualLines(t *testing.T) {
	m, k, p := setupHybrid(t, DelayedSegments, true)
	va, _ := p.Mmap(4*addr.PageSize, addr.PermRW, osmodel.MmapOpts{})
	m.Access(Request{Kind: cache.Write, VA: va, Proc: p})
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, va)) == nil {
		t.Fatal("setup: line not cached virtually")
	}
	// The OS transitions the page to shared: virtual lines must be gone.
	if err := k.MarkShared(p, va, 4*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if m.Hier.LLC().Probe(addr.VirtName(p.ASID, va)) != nil {
		t.Fatal("virtual line survived synonym transition")
	}
	// The next access goes through the synonym path and caches physically.
	m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	pa, _ := p.PT.Translate(va)
	if m.Hier.LLC().Probe(addr.PhysName(pa)) == nil {
		t.Error("post-transition access not cached physically")
	}
	checkSingleName(t, m, k)
}

func TestEnergyAccounting(t *testing.T) {
	m, _, p := setupHybrid(t, DelayedSegments, true)
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	for i := 0; i < 100; i++ {
		m.Access(Request{Kind: cache.Read, VA: va + addr.VA(i*64), Proc: p})
	}
	acc := m.Energy()
	if acc.Accesses[1] != 0 { // L2TLB: hybrid has none
		t.Error("hybrid charged L2 TLB energy")
	}
	if acc.Dynamic() <= 0 {
		t.Error("no dynamic energy recorded")
	}
	// Filter probed on every access.
	if got := acc.Accesses[2]; got != 100 { // SynonymFilter
		t.Errorf("filter accesses = %d, want 100", got)
	}
}

func TestEnigmaFilterBypass(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
	cfg := smallHybridConfig(1, DelayedPageTLB, false)
	cfg.FilterBypass = true
	m := NewHybridMMU(cfg, k)
	p, _ := k.NewProcess()
	va, _ := p.Mmap(1<<20, addr.PermRW, osmodel.MmapOpts{})
	m.Access(Request{Kind: cache.Read, VA: va, Proc: p})
	if p.Filter.Lookups.Value() != 0 {
		t.Error("filter probed in bypass mode")
	}
	if m.Energy().Accesses[2] != 0 {
		t.Error("filter energy charged in bypass mode")
	}
	if m.Name() != "enigma-dtlb1024" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestNames(t *testing.T) {
	k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 26})
	if n := NewHybridMMU(smallHybridConfig(1, DelayedSegments, true), k).Name(); n != "hybrid-manyseg+sc" {
		t.Errorf("name = %q", n)
	}
	k2 := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 26})
	if n := NewHybridMMU(smallHybridConfig(1, DelayedSegments, false), k2).Name(); n != "hybrid-manyseg" {
		t.Errorf("name = %q", n)
	}
	k3 := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 26})
	if n := NewHybridMMU(smallHybridConfig(1, DelayedPageTLB, false), k3).Name(); n != "hybrid-dtlb1024" {
		t.Errorf("name = %q", n)
	}
}

func TestDelayedTLBEnergyScalesWithSize(t *testing.T) {
	run := func(entries int) float64 {
		k := osmodel.NewKernel(osmodel.Config{PhysBytes: 1 << 30})
		cfg := smallHybridConfig(1, DelayedPageTLB, false)
		cfg.DelayedTLBEntries = entries
		m := NewHybridMMU(cfg, k)
		p, _ := k.NewProcess()
		va, _ := p.Mmap(8<<20, addr.PermRW, osmodel.MmapOpts{})
		for off := uint64(0); off < 4<<20; off += 64 {
			m.Access(Request{Kind: cache.Read, VA: va + addr.VA(off), Proc: p})
		}
		return m.Energy().Dynamic()
	}
	small, big := run(1024), run(32768)
	if big <= small {
		t.Errorf("32K-entry delayed TLB energy (%.0f) not above 1K (%.0f)", big, small)
	}
}
