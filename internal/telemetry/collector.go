package telemetry

import (
	"sort"
	"sync"
	"time"

	"hybridvc/internal/stats"
)

// DefaultLatencyBounds are the per-stage latency bucket upper bounds in
// microseconds: 100µs to 60s, roughly logarithmic. Simulations span
// milliseconds (cache-served jobs) to minutes (full-scale sweeps), so
// the range must cover both without an explosion of buckets.
var DefaultLatencyBounds = []uint64{
	100, 250, 500, // sub-millisecond: cache-hit serves
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, // 1–50ms: queue waits
	100_000, 250_000, 500_000, // 0.1–0.5s: quick sims
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000, // 1–60s
}

// Collector accumulates the per-job lifecycle-stage latency histograms
// the daemon exposes at /metrics. All histograms observe microseconds
// (render with LatencyScale). One mutex guards every histogram so a
// single ObserveCompleted is atomic with respect to Snapshot: a scrape
// can never see the queue-wait, execute and end-to-end families
// disagreeing about how many jobs completed.
type Collector struct {
	mu         sync.Mutex
	queueWait  *stats.Histogram // queued → running, completed jobs only
	execute    *stats.Histogram // running → done
	endToEnd   *stats.Histogram // submit → done
	cacheServe *stats.Histogram // submit → born-done (dedup-done or cache hit)
	simulate   map[string]*stats.Histogram // execute latency by org, sim jobs
}

// NewCollector builds a collector on DefaultLatencyBounds.
func NewCollector() *Collector {
	return &Collector{
		queueWait:  stats.NewHistogram(DefaultLatencyBounds...),
		execute:    stats.NewHistogram(DefaultLatencyBounds...),
		endToEnd:   stats.NewHistogram(DefaultLatencyBounds...),
		cacheServe: stats.NewHistogram(DefaultLatencyBounds...),
		simulate:   make(map[string]*stats.Histogram),
	}
}

// usec clamps a duration to non-negative whole microseconds.
func usec(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d / time.Microsecond)
}

// ObserveCompleted records one successfully completed job's stage
// latencies: queue wait (created→started), execution (started→finished)
// and end-to-end (created→finished). A non-empty org additionally files
// the execution latency under the per-org simulate family (sweep jobs
// pass ""). The three base families therefore stay exactly in lockstep:
// each has one observation per completed job.
func (c *Collector) ObserveCompleted(org string, queueWait, execute, endToEnd time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queueWait.Observe(usec(queueWait))
	c.execute.Observe(usec(execute))
	c.endToEnd.Observe(usec(endToEnd))
	if org != "" {
		h, ok := c.simulate[org]
		if !ok {
			// Label cardinality is bounded by the organization catalog —
			// specs are validated against it before any job runs.
			h = stats.NewHistogram(DefaultLatencyBounds...)
			c.simulate[org] = h
		}
		h.Observe(usec(execute))
	}
}

// ObserveCacheServe records the submit-to-served latency of a job that
// was born done (live-job dedup onto a finished job, or a content-
// addressed cache hit).
func (c *Collector) ObserveCacheServe(d time.Duration) {
	c.mu.Lock()
	c.cacheServe.Observe(usec(d))
	c.mu.Unlock()
}

// Completed returns the number of completed jobs observed — the single
// source of truth for the daemon's "completed" counter, so the counter
// and the histogram +Inf buckets reconcile exactly on every scrape.
func (c *Collector) Completed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endToEnd.Count()
}

// StageSnapshot is a consistent freeze of every stage histogram.
type StageSnapshot struct {
	QueueWait  stats.HistogramSnapshot
	Execute    stats.HistogramSnapshot
	EndToEnd   stats.HistogramSnapshot
	CacheServe stats.HistogramSnapshot
	// Simulate maps organization → execute-latency snapshot.
	Simulate map[string]stats.HistogramSnapshot
}

// Orgs returns the simulate label values in sorted (deterministic
// exposition) order.
func (s StageSnapshot) Orgs() []string {
	orgs := make([]string, 0, len(s.Simulate))
	for org := range s.Simulate {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	return orgs
}

// Snapshot freezes all stage histograms under one lock acquisition, so
// the returned families agree with each other mid-run.
func (c *Collector) Snapshot() StageSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := StageSnapshot{
		QueueWait:  c.queueWait.Snapshot(),
		Execute:    c.execute.Snapshot(),
		EndToEnd:   c.endToEnd.Snapshot(),
		CacheServe: c.cacheServe.Snapshot(),
		Simulate:   make(map[string]stats.HistogramSnapshot, len(c.simulate)),
	}
	for org, h := range c.simulate {
		snap.Simulate[org] = h.Snapshot()
	}
	return snap
}
