package fault

import (
	"errors"
	"fmt"
	"sort"

	"hybridvc/internal/addr"
	"hybridvc/internal/cache"
	"hybridvc/internal/core"
	"hybridvc/internal/osmodel"
	"hybridvc/internal/pipeline"
	"hybridvc/internal/tlb"
)

// NamedTLB is a translation structure the Checker audits against the
// authoritative page tables.
type NamedTLB struct {
	Name string
	T    *tlb.TLB
}

// Recon is one organization-specific statistic/probe-event reconciliation
// pair: Stat reads the memory system's own counter and Event derives the
// same quantity from the checker's probe counts. The two must agree at
// every check point.
type Recon struct {
	Label string
	Stat  func() uint64
	Event func(p *pipeline.CountingProbe) uint64
}

// CheckerConfig wires a Checker to one system.
type CheckerConfig struct {
	// Mem is the memory system under audit; it must implement
	// core.BaseHolder (all organizations do).
	Mem core.MemSystem
	// Kernel owns the address spaces whose names appear in the hierarchy
	// (the guest kernel in virtualized organizations).
	Kernel *osmodel.Kernel
	// TranslateGPA resolves guest-physical to machine addresses in
	// virtualized organizations, where page tables map to guest-physical
	// space but synonym blocks are named by machine address.
	TranslateGPA func(addr.GPA) (addr.PA, bool)
	// SplitL1 marks OVC-style organizations: the L1 is virtual and the
	// outer levels physical, so inclusion does not hold across the naming
	// boundary and a filter false positive legitimately caches a block
	// physically alongside a virtual copy. The checker then audits only
	// the virtual L1 lines.
	SplitL1 bool
	// AllowSharedVirtual permits r/w shared pages under virtual names:
	// filter-bypass (Enigma-style) organizations cache everything
	// virtually and tolerate multi-name sharing by construction.
	AllowSharedVirtual bool
	// NestedWalks marks virtualized organizations whose 2D walkers fetch
	// nested tables outside the shared walk path: their probe walk-step
	// counts legitimately exceed the base counter, so that pair is not
	// reconciled (matching the repo-wide probe invariants).
	NestedWalks bool
	// TLBs lists translation structures to audit against the page tables.
	TLBs []NamedTLB
	// PayloadCoherence audits one cached metadata block (typed-payload
	// line) against the authoritative OS structures; organizations that
	// park translations or synonym records in the caches supply it. Nil
	// when the organization caches no metadata.
	PayloadCoherence func(n addr.Name, payload uint64) error
	// Extra adds organization-specific reconciliation pairs (for example
	// the hybrid MMU's false-positive counter against the probe's
	// FalsePositive events).
	Extra []Recon
}

// Checker verifies the design's structural invariants at runtime:
//
//  1. One name per block — every physical line address is cached under at
//     most one name across the hierarchy, except the legitimate
//     multi-name cases the paper carves out (read-only content sharing,
//     Section III-D; r/w sharing under filter bypass; OVC's split-L1
//     physical duplicates).
//  2. No synonym-filter false negatives — every page of every live
//     synonym range classifies as a candidate.
//  3. Translation coherence — every valid TLB entry agrees with the
//     authoritative page tables (mapping exists, frame and shared flag
//     match).
//  4. Event/statistics reconciliation — probe event counts match the
//     memory system's own counters, so neither layer drops or double
//     counts under faults.
//  5. The hierarchy's own MESI/inclusion invariants (skipped for SplitL1,
//     where inclusion across the naming boundary does not hold).
//
// A Checker is itself a pipeline.Probe (attach it with SetProbe, before
// any injector in the Tee so its counts are current when the injector
// triggers a check). Check may be called at any Route emission point: the
// hierarchy is never mid-update there.
type Checker struct {
	pipeline.CountingProbe
	cfg  CheckerConfig
	base *pipeline.Base

	// Counter baselines captured at attach time, so systems audited from
	// mid-run still reconcile.
	faults0, walkSteps0 uint64
	extra0              []uint64

	// Checks counts completed Check calls.
	Checks uint64
	// Violations counts Check calls that found at least one violation.
	Violations uint64

	firstErr error
}

// NewChecker builds a checker; Mem must implement core.BaseHolder.
func NewChecker(cfg CheckerConfig) (*Checker, error) {
	bh, ok := cfg.Mem.(core.BaseHolder)
	if !ok {
		return nil, fmt.Errorf("fault: %s does not expose pipeline base state", cfg.Mem.Name())
	}
	c := &Checker{cfg: cfg, base: bh.BaseState()}
	c.faults0 = c.base.Faults.Value()
	c.walkSteps0 = c.base.WalkSteps.Value()
	c.extra0 = make([]uint64, len(cfg.Extra))
	for i, r := range cfg.Extra {
		c.extra0[i] = r.Stat()
	}
	return c, nil
}

// Err returns the first violation any Check observed, or nil.
func (c *Checker) Err() error { return c.firstErr }

// maxViolations bounds how many violations one Check reports.
const maxViolations = 8

// Check runs every invariant and returns the violations found (nil when
// the system is consistent). The first failing Check is retained for Err.
func (c *Checker) Check() error {
	c.Checks++
	var errs []error
	add := func(err error) {
		if err != nil && len(errs) < maxViolations {
			errs = append(errs, err)
		}
	}
	c.checkNames(add)
	c.checkFilters(add)
	c.checkTLBs(add)
	c.checkPayloads(add)
	c.checkStats(add)
	if !c.cfg.SplitL1 {
		add(c.cfg.Mem.Hierarchy().CheckInvariants())
	}
	if len(errs) == 0 {
		return nil
	}
	c.Violations++
	err := errors.Join(errs...)
	if c.firstErr == nil {
		c.firstErr = err
	}
	return err
}

// nameRec is one distinct cache name resolved to its physical line.
type nameRec struct {
	name     addr.Name
	writable bool // the mapping permits writes
	shared   bool // the backing PTE is marked r/w shared
}

// checkNames audits the one-name-per-block invariant.
func (c *Checker) checkNames(add func(error)) {
	h := c.cfg.Mem.Hierarchy()
	// byPA maps each line-aligned physical address to the distinct names
	// (keyed by Name.Key) it is cached under anywhere in the hierarchy.
	byPA := make(map[addr.PA]map[uint64]nameRec)
	record := func(pa addr.PA, r nameRec) {
		m := byPA[pa]
		if m == nil {
			m = make(map[uint64]nameRec, 1)
			byPA[pa] = m
		}
		m[r.name.Key()] = r
	}
	walk := func(label string, ca *cache.Cache) {
		ca.ForEachLine(func(n addr.Name, l *cache.Line) {
			if n.Kind != addr.PayloadData {
				// Metadata blocks (cached translations, synonym records) are
				// named by the virtual page they describe, not by data they
				// hold, so they never alias a data line; checkPayloads audits
				// them against the OS structures instead.
				return
			}
			if n.Synonym {
				if c.cfg.SplitL1 {
					// Outside the virtual L1, the physical address is the
					// name: nothing to cross-check, and a filter false
					// positive may legitimately have cached a physical
					// duplicate of a virtual L1 line.
					return
				}
				record(addr.PA(n.Addr), nameRec{name: n, writable: l.Perm.AllowsWrite()})
				return
			}
			proc := c.cfg.Kernel.Process(n.ASID)
			if proc == nil {
				add(fmt.Errorf("%s: line %s names unknown address space", label, n))
				return
			}
			va := addr.VA(n.Addr)
			pte, ok := proc.PT.Lookup(va)
			if !ok {
				add(fmt.Errorf("%s: line %s is stale: page not mapped", label, n))
				return
			}
			pa, ok := proc.PT.Translate(va)
			if !ok {
				add(fmt.Errorf("%s: line %s: page table walk failed", label, n))
				return
			}
			if c.cfg.TranslateGPA != nil {
				ma, ok := c.cfg.TranslateGPA(addr.GPA(pa))
				if !ok {
					add(fmt.Errorf("%s: line %s: guest PA %#x has no machine backing", label, n, uint64(pa)))
					return
				}
				pa = ma
			}
			if pte.Shared && !c.cfg.AllowSharedVirtual {
				add(fmt.Errorf("%s: synonym page cached under virtual name %s", label, n))
				return
			}
			record(pa, nameRec{name: n, writable: pte.Perm.AllowsWrite(), shared: pte.Shared})
		})
	}
	if c.cfg.SplitL1 {
		// Virtual lines live only in the (single-core) L1s.
		walk("l1i0", h.L1I(0))
		walk("l1d0", h.L1D(0))
	} else {
		for i := 0; i < h.NumCores(); i++ {
			walk(fmt.Sprintf("l1i%d", i), h.L1I(i))
			walk(fmt.Sprintf("l1d%d", i), h.L1D(i))
			walk(fmt.Sprintf("l2-%d", i), h.L2(i))
		}
		walk("llc", h.LLC())
	}
	for pa, names := range byPA {
		if len(names) <= 1 {
			continue
		}
		// Legitimate multi-name cases: read-only content sharing keeps one
		// virtual name per mapping (Section III-D), and filter-bypass
		// organizations cache r/w shared pages under each sharer's name.
		allVirtual, allReadOnly, allShared := true, true, true
		for _, r := range names {
			allVirtual = allVirtual && !r.name.Synonym
			allReadOnly = allReadOnly && !r.writable
			allShared = allShared && r.shared
		}
		if allVirtual && (allReadOnly || (c.cfg.AllowSharedVirtual && allShared)) {
			continue
		}
		list := make([]string, 0, len(names))
		for _, r := range names {
			list = append(list, r.name.String())
		}
		sort.Strings(list)
		add(fmt.Errorf("physical line %#x cached under %d names: %v", uint64(pa), len(list), list))
	}
}

// checkFilters verifies the no-false-negative guarantee: every page of
// every live synonym range must classify as a candidate.
func (c *Checker) checkFilters(add func(error)) {
	asids := c.cfg.Kernel.ASIDs()
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		p := c.cfg.Kernel.Process(asid)
		for _, r := range p.SynonymRanges {
			for off := uint64(0); off < r.Length; off += addr.PageSize {
				if va := r.Start + addr.VA(off); !p.Filter.ProbeQuiet(va) {
					add(fmt.Errorf("filter false negative: %s %#x is a live synonym page but not a candidate", asid, uint64(va)))
					break // one per range keeps reports readable
				}
			}
		}
	}
}

// checkTLBs verifies every valid entry of the wired translation
// structures against the page tables.
func (c *Checker) checkTLBs(add func(error)) {
	const hugeFrames = addr.HugePageSize / addr.PageSize
	for _, nt := range c.cfg.TLBs {
		nt.T.ForEach(func(e tlb.Entry) {
			proc := c.cfg.Kernel.Process(e.ASID)
			if proc == nil {
				add(fmt.Errorf("%s: entry for dead address space %s", nt.Name, e.ASID))
				return
			}
			va := addr.PageToVA(e.VPN)
			pte, ok := proc.PT.Lookup(va)
			if !ok {
				add(fmt.Errorf("%s: stale entry %s vpn %#x: page not mapped", nt.Name, e.ASID, e.VPN))
				return
			}
			want := pte.Frame
			if pte.Huge {
				want |= e.VPN & (hugeFrames - 1)
			}
			if e.PFN != want {
				add(fmt.Errorf("%s: entry %s vpn %#x maps frame %#x, page table says %#x",
					nt.Name, e.ASID, e.VPN, e.PFN, want))
				return
			}
			if e.Shared != pte.Shared {
				add(fmt.Errorf("%s: entry %s vpn %#x shared=%v disagrees with page table (%v)",
					nt.Name, e.ASID, e.VPN, e.Shared, pte.Shared))
			}
		})
	}
}

// checkPayloads verifies every cached metadata block against the
// authoritative OS structures through the organization's PayloadCoherence
// hook (translation blocks must agree with the page tables, synonym
// records with the live synonym ranges).
func (c *Checker) checkPayloads(add func(error)) {
	if c.cfg.PayloadCoherence == nil {
		return
	}
	c.cfg.Mem.Hierarchy().ForEachPayload(func(n addr.Name, payload uint64) {
		add(c.cfg.PayloadCoherence(n, payload))
	})
}

// checkStats reconciles probe event counts against the memory system's
// own statistics, relative to the attach-time baselines.
func (c *Checker) checkStats(add func(error)) {
	if got, want := c.Faults, c.base.Faults.Value()-c.faults0; got != want {
		add(fmt.Errorf("reconciliation: probe saw %d fault events, base counted %d", got, want))
	}
	if got, want := c.WalkSteps, c.base.WalkSteps.Value()-c.walkSteps0; !c.cfg.NestedWalks && got != want {
		add(fmt.Errorf("reconciliation: probe saw %d walk steps, base counted %d", got, want))
	}
	for i, r := range c.cfg.Extra {
		if got, want := r.Event(&c.CountingProbe), r.Stat()-c.extra0[i]; got != want {
			add(fmt.Errorf("reconciliation: %s: probe derived %d, counter says %d", r.Label, got, want))
		}
	}
}
