package experiments

import (
	"fmt"
	"math/rand"

	"hybridvc"
	"hybridvc/internal/addr"
	"hybridvc/internal/bloom"
	"hybridvc/internal/core"
	"hybridvc/internal/sim"
	"hybridvc/internal/stats"
	"hybridvc/internal/synfilter"
)

// FilterDesign is one synonym filter design point for the A1 ablation.
type FilterDesign struct {
	Label string
	// Probe reports whether the design flags va as a candidate.
	Probe func(va addr.VA) bool
}

// a1Ranges regenerates the shared synonym ranges used by every A1 design
// point: 16 regions of 8 pages in the low half of the space. Each cell
// rebuilds them from the fixed seed so cells stay self-contained.
func a1Ranges() []struct {
	start addr.VA
	len   uint64
} {
	rng := rand.New(rand.NewSource(23))
	var ranges []struct {
		start addr.VA
		len   uint64
	}
	for i := 0; i < 16; i++ {
		start := addr.VA(rng.Uint64()%(1<<40)) & ^addr.VA(1<<synfilter.FineBits-1)
		ranges = append(ranges, struct {
			start addr.VA
			len   uint64
		}{start, 8 * addr.PageSize})
	}
	return ranges
}

// a1Designs builds the four filter designs over the shared ranges: the
// paper's two-granularity, two-hash design, a single fine filter, a
// single coarse filter, and a one-hash variant.
func a1Designs() []FilterDesign {
	paper := synfilter.New()
	fineOnly := bloom.New(addr.VABits - synfilter.FineBits)
	coarseOnly := bloom.New(addr.VABits - synfilter.CoarseBits)
	oneHash := bloom.New(addr.VABits - synfilter.FineBits) // probe uses one index

	for _, r := range a1Ranges() {
		paper.MarkSynonymRange(r.start, r.len)
		for off := uint64(0); off < r.len; off += addr.PageSize {
			va := r.start + addr.VA(off)
			fineOnly.Insert(uint64(va) >> synfilter.FineBits)
			coarseOnly.Insert(uint64(va) >> synfilter.CoarseBits)
			oneHash.Insert(uint64(va) >> synfilter.FineBits)
		}
	}
	return []FilterDesign{
		{"two-granularity x two-hash (paper)", paper.ProbeQuiet},
		{"fine 32KB only", func(va addr.VA) bool {
			return fineOnly.Contains(uint64(va) >> synfilter.FineBits)
		}},
		{"coarse 16MB only", func(va addr.VA) bool {
			return coarseOnly.Contains(uint64(va) >> synfilter.CoarseBits)
		}},
		{"fine, single hash", func(va addr.VA) bool {
			return containsOne(oneHash, uint64(va)>>synfilter.FineBits)
		}},
	}
}

// AblationFilterDesign compares the paper's two-granularity, two-hash
// design against simpler filters: a single fine filter, a single coarse
// filter, and a one-hash variant. It marks realistic shared ranges (8-page
// regions) and measures false positives over a disjoint probe stream.
func AblationFilterDesign(scale Scale) (*stats.Table, error) {
	n := scale.pick(200_000, 2_000_000)
	labels := make([]string, len(a1Designs()))
	var cells []Cell
	for di, d := range a1Designs() {
		di, label := di, d.Label
		labels[di] = label
		cells = append(cells, Cell{
			Label: "ablation-a1/" + label,
			Fn: func() (any, error) {
				// Rebuild the filters inside the cell: probes are
				// read-only, but self-contained cells need no sharing.
				d := a1Designs()[di]
				fp := uint64(0)
				probes := uint64(0)
				prng := rand.New(rand.NewSource(29))
				for i := uint64(0); i < n; i++ {
					// Probe the disjoint upper half of the address space.
					va := addr.VA(1<<41 | prng.Uint64()%(1<<40))
					probes++
					if d.Probe(va) {
						fp++
					}
				}
				return [2]uint64{fp, probes}, nil
			},
		})
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation A1: synonym filter design vs false-positive rate",
		"design", "false positives", "rate")
	for di, label := range labels {
		v := res[di].Value.([2]uint64)
		fp, probes := v[0], v[1]
		t.AddRow(label, fmt.Sprintf("%d", fp),
			fmt.Sprintf("%.4f%%", 100*stats.Ratio(fp, probes)))
	}
	return t, nil
}

// containsOne checks only the first hash function's bit — the single-hash
// ablation.
func containsOne(f *bloom.Filter, granule uint64) bool {
	i1, _ := f.Indices(granule)
	w := f.Words()
	return w[i1/64]&(1<<(i1%64)) != 0
}

// AblationSegmentCache quantifies the segment cache's contribution (the
// Figure 9 with/without-SC pair) on a friendly and an adversarial
// workload.
func AblationSegmentCache(scale Scale) (*stats.Table, error) {
	n := scale.pick(40_000, 500_000)
	workloads := []string{"stream", "gups"}
	orgs := []hybridvc.Organization{hybridvc.HybridManySeg, hybridvc.HybridManySegSC}
	var cells []Cell
	for _, wl := range workloads {
		for _, org := range orgs {
			cells = append(cells, Cell{
				Label:        fmt.Sprintf("ablation-a2/%s/%s", wl, org),
				Config:       hybridvc.Config{Org: org},
				Workloads:    []string{wl},
				Instructions: n,
			})
		}
	}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation A2: segment cache on/off",
		"workload", "many-segment cycles", "+SC cycles", "SC speedup")
	for wi, wl := range workloads {
		without := res[wi*len(orgs)].Report.Cycles
		with := res[wi*len(orgs)+1].Report.Cycles
		t.AddRow(wl, fmt.Sprintf("%d", without), fmt.Sprintf("%d", with),
			fmt.Sprintf("%.3f", float64(without)/float64(with)))
	}
	return t, nil
}

// walkStats carries the translator's walk statistics out of a cell.
type walkStats struct {
	walks     uint64
	meanDepth float64
	maxDepth  uint64
}

// SegmentWalkLatency reports the delayed many-segment translation latency
// distribution, validating the paper's ~20-cycle estimate (<=4 index cache
// probes at 3 cycles plus a 7-cycle segment table access).
func SegmentWalkLatency(scale Scale) (*stats.Table, error) {
	n := scale.pick(60_000, 500_000)
	cells := []Cell{{
		Label:        "latency/xalancbmk/many-segment",
		Config:       hybridvc.Config{Org: hybridvc.HybridManySeg},
		Workloads:    []string{"xalancbmk"},
		Instructions: n,
		Extract: func(sys *hybridvc.System, _ sim.Report) (any, error) {
			tr := sys.Mem.(*core.HybridMMU).Translator()
			return walkStats{
				walks:     tr.Walks.Value(),
				meanDepth: tr.WalkDepth.Mean(),
				maxDepth:  tr.WalkDepth.Max(),
			}, nil
		},
	}}
	res, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	ws := res[0].Value.(walkStats)

	t := stats.NewTable("Delayed many-segment translation walk statistics (Section IV-C)",
		"metric", "value")
	t.AddRow("index tree walks", fmt.Sprintf("%d", ws.walks))
	t.AddRow("mean walk depth (nodes)", fmt.Sprintf("%.2f", ws.meanDepth))
	t.AddRow("max walk depth (nodes)", fmt.Sprintf("%d", ws.maxDepth))
	warmCycles := ws.meanDepth*3 + 7
	t.AddRow("warm walk latency (cycles)", fmt.Sprintf("%.1f", warmCycles))
	t.AddRow("paper estimate (cycles)", "<= 19-20")
	return t, nil
}
