// Package service is the simulation-as-a-service layer: a long-running
// HTTP daemon (cmd/hvcd) that accepts simulation and sweep jobs,
// schedules them on a bounded worker pool reusing the experiments sweep
// runner, and serves results from a content-addressed cache so repeated
// submissions of the same configuration — the dominant access pattern of
// design-space exploration — hit memory instead of re-simulating.
//
// The cache key is a canonical SHA-256 over the normalized job spec with
// every workload name replaced by its content digest, so two submissions
// describing the same (organization, workload content, harness
// configuration, seed) collide regardless of field ordering, defaulted
// fields, or workload renames that keep the content identical.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hybridvc"
	"hybridvc/experiments"
	"hybridvc/internal/workload"
)

// Job kinds.
const (
	// KindSim runs one simulation of a single organization and returns
	// its sim.Report (with a live streaming timeline).
	KindSim = "sim"
	// KindSweep runs a registered experiment (a full table/figure sweep)
	// and returns its rendered tables.
	KindSweep = "sweep"
)

// JobSpec is a submitted job, the body of POST /v1/jobs. Zero fields
// take server defaults (see Normalize); the normalized spec — not the
// submitted one — is what the cache key hashes, so explicit defaults and
// omitted fields address the same cache line.
type JobSpec struct {
	// Kind selects the job type: "sim" (default) or "sweep".
	Kind string `json:"kind,omitempty"`

	// Sim jobs: the hybridvc.Config surface.
	Org               string   `json:"org,omitempty"`
	Workloads         []string `json:"workloads,omitempty"`
	Instructions      uint64   `json:"instructions,omitempty"`
	Cores             int      `json:"cores,omitempty"`
	LLCBytes          int      `json:"llc_bytes,omitempty"`
	DelayedTLBEntries int      `json:"delayed_tlb_entries,omitempty"`
	IndexCacheBytes   int      `json:"index_cache_bytes,omitempty"`
	Seed              int64    `json:"seed,omitempty"`
	// Interval is the timeline window in instructions (sim jobs always
	// collect a timeline so GET /v1/jobs/{id}/timeline can stream it).
	Interval uint64 `json:"interval,omitempty"`

	// Sweep jobs.
	Experiment string `json:"experiment,omitempty"`
	Scale      string `json:"scale,omitempty"` // "quick" (default) or "full"
}

// Normalize fills defaults in place and validates the spec against the
// organization, workload and experiment catalogs. It returns an error
// describing the first problem found; a nil error means the spec is
// runnable and canonical (two specs describing the same job are now
// field-for-field equal).
func (s *JobSpec) Normalize() error {
	if s.Kind == "" {
		s.Kind = KindSim
	}
	switch s.Kind {
	case KindSim:
		return s.normalizeSim()
	case KindSweep:
		return s.normalizeSweep()
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", s.Kind, KindSim, KindSweep)
	}
}

func (s *JobSpec) normalizeSim() error {
	if s.Org == "" {
		s.Org = string(hybridvc.HybridManySegSC)
	}
	if !knownOrg(s.Org) {
		return fmt.Errorf("unknown organization %q", s.Org)
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"gups"}
	}
	for _, name := range s.Workloads {
		if _, err := workload.Get(name); err != nil {
			return err
		}
	}
	if s.Instructions == 0 {
		s.Instructions = 200_000
	}
	if s.Cores <= 0 {
		s.Cores = 1
	}
	if s.Org == string(hybridvc.OVC) && s.Cores != 1 {
		return fmt.Errorf("organization %q is single-core (got cores=%d)", s.Org, s.Cores)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Interval == 0 {
		s.Interval = 10_000
	}
	// Sweep-only fields must be absent on a sim job: silently hashing
	// them into the key would split the cache for no behavioural reason.
	if s.Experiment != "" || s.Scale != "" {
		return fmt.Errorf("experiment/scale are sweep-job fields (kind %q)", KindSweep)
	}
	return nil
}

func (s *JobSpec) normalizeSweep() error {
	if s.Experiment == "" {
		return fmt.Errorf("sweep job needs an experiment (one of: %s)", experiments.Usage())
	}
	if _, ok := experiments.Lookup(s.Experiment); !ok {
		return fmt.Errorf("unknown experiment %q (want one of: %s)", s.Experiment, experiments.Usage())
	}
	switch s.Scale {
	case "":
		s.Scale = "quick"
	case "quick", "full":
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", s.Scale)
	}
	if s.Org != "" || len(s.Workloads) != 0 || s.Instructions != 0 || s.Cores != 0 ||
		s.LLCBytes != 0 || s.DelayedTLBEntries != 0 || s.IndexCacheBytes != 0 ||
		s.Seed != 0 || s.Interval != 0 {
		return fmt.Errorf("sim-job fields are not meaningful on a sweep job")
	}
	return nil
}

// ExperimentScale maps the spec's scale string to the registry type.
func (s *JobSpec) ExperimentScale() experiments.Scale {
	if s.Scale == "full" {
		return experiments.Full
	}
	return experiments.Quick
}

func knownOrg(name string) bool {
	for _, o := range hybridvc.Organizations() {
		if string(o) == name {
			return true
		}
	}
	return false
}

// keyMaterial is the canonical content hashed into the cache key. It is
// the normalized spec with workload names replaced by content digests,
// plus a schema version so a change to result semantics (what a Report
// means) can invalidate every old key at once.
type keyMaterial struct {
	Schema          int      `json:"schema"`
	Kind            string   `json:"kind"`
	Org             string   `json:"org,omitempty"`
	WorkloadDigests []string `json:"workload_digests,omitempty"`
	Instructions    uint64   `json:"instructions,omitempty"`
	Cores           int      `json:"cores,omitempty"`
	LLCBytes        int      `json:"llc_bytes,omitempty"`
	DelayedTLB      int      `json:"delayed_tlb,omitempty"`
	IndexCache      int      `json:"index_cache,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	Interval        uint64   `json:"interval,omitempty"`
	Experiment      string   `json:"experiment,omitempty"`
	Scale           string   `json:"scale,omitempty"`
}

// keySchema bumps when the meaning of a cached result changes.
const keySchema = 1

// CacheKey returns the content address of a NORMALIZED spec: a hex
// SHA-256 of the canonical key material. Call Normalize first — hashing
// an unnormalized spec would give defaulted and explicit submissions of
// the same job different keys.
func (s *JobSpec) CacheKey() string {
	m := keyMaterial{
		Schema:       keySchema,
		Kind:         s.Kind,
		Org:          s.Org,
		Instructions: s.Instructions,
		Cores:        s.Cores,
		LLCBytes:     s.LLCBytes,
		DelayedTLB:   s.DelayedTLBEntries,
		IndexCache:   s.IndexCacheBytes,
		Seed:         s.Seed,
		Interval:     s.Interval,
		Experiment:   s.Experiment,
		Scale:        s.Scale,
	}
	for _, name := range s.Workloads {
		// Normalize validated every name; an unknown one here is a bug.
		spec, err := workload.Get(name)
		if err != nil {
			panic(fmt.Sprintf("service: CacheKey on unnormalized spec: %v", err))
		}
		m.WorkloadDigests = append(m.WorkloadDigests, spec.Digest())
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("service: key marshal: %v", err)) // unreachable
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
