// Package addr defines the address types shared by every component of the
// hybrid virtual caching simulator: virtual and physical addresses, address
// space identifiers (ASIDs), and the unified cache "name" that identifies a
// block in the virtually addressed hierarchy.
//
// The paper addresses non-synonym cachelines by ASID concatenated with the
// virtual address (ASID+VA) and synonym cachelines by physical address. A
// Name value carries either form, so caches, coherence, and the delayed
// translation machinery can treat both uniformly while preserving the
// paper's single-name-per-physical-block invariant.
package addr

import "fmt"

// Fundamental geometry constants. The simulator models a 48-bit virtual
// address space and a 40-bit physical address space (the paper's worst-case
// index-cache study distributes segments over a 40-bit physical space).
const (
	// LineBits is log2 of the cache line size (64 B).
	LineBits = 6
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineBits
	// PageBits is log2 of the base page size (4 KiB).
	PageBits = 12
	// PageSize is the base page size in bytes.
	PageSize = 1 << PageBits
	// HugePageBits is log2 of the 2 MiB huge page / segment cache granule.
	HugePageBits = 21
	// HugePageSize is the 2 MiB granule size.
	HugePageSize = 1 << HugePageBits
	// VABits is the number of implemented virtual address bits.
	VABits = 48
	// PABits is the number of implemented physical address bits.
	PABits = 40
)

// VA is a virtual address. In virtualized configurations it holds a guest
// virtual address (gVA).
type VA uint64

// PA is a physical address. In virtualized configurations it holds a machine
// address (MA); guest physical addresses use the GPA type.
type PA uint64

// GPA is a guest physical address, the intermediate space of two-dimensional
// translation (gVA -> gPA -> MA).
type GPA uint64

// NoPA is a sentinel for "no physical address".
const NoPA PA = ^PA(0)

// ASID identifies an address space. The paper configures 16 bits, which must
// cover both the process identifier and, on virtualized systems, the virtual
// machine identifier (VMID). We pack VMID in the high 6 bits and the
// per-VM process id in the low 10 bits; native processes use VMID 0.
type ASID uint16

const (
	vmidBits = 6
	procBits = 10
	// MaxVMID is the largest encodable virtual machine identifier.
	MaxVMID = 1<<vmidBits - 1
	// MaxProc is the largest encodable per-VM process identifier.
	MaxProc = 1<<procBits - 1
)

// MakeASID packs a VMID and a per-VM process id into an ASID.
// It panics if either component is out of range; identifier allocation is an
// OS/hypervisor responsibility and running out is a configuration error.
func MakeASID(vmid, proc uint32) ASID {
	if vmid > MaxVMID {
		panic(fmt.Sprintf("addr: VMID %d exceeds %d", vmid, MaxVMID))
	}
	if proc > MaxProc {
		panic(fmt.Sprintf("addr: process id %d exceeds %d", proc, MaxProc))
	}
	return ASID(vmid<<procBits | proc)
}

// VMID extracts the virtual machine identifier.
func (a ASID) VMID() uint32 { return uint32(a) >> procBits }

// Proc extracts the per-VM process identifier.
func (a ASID) Proc() uint32 { return uint32(a) & MaxProc }

func (a ASID) String() string {
	return fmt.Sprintf("asid(vm=%d,proc=%d)", a.VMID(), a.Proc())
}

// Page returns the 4 KiB virtual page number.
func (v VA) Page() uint64 { return uint64(v) >> PageBits }

// HugePage returns the 2 MiB virtual granule number.
func (v VA) HugePage() uint64 { return uint64(v) >> HugePageBits }

// Line returns the cache line number.
func (v VA) Line() uint64 { return uint64(v) >> LineBits }

// PageOffset returns the offset within the 4 KiB page.
func (v VA) PageOffset() uint64 { return uint64(v) & (PageSize - 1) }

// LineAligned returns the address rounded down to its cache line.
func (v VA) LineAligned() VA { return v &^ (LineSize - 1) }

// PageAligned returns the address rounded down to its 4 KiB page.
func (v VA) PageAligned() VA { return v &^ (PageSize - 1) }

// Canonical reports whether the address fits in the implemented VA bits.
func (v VA) Canonical() bool { return uint64(v)>>VABits == 0 }

// Frame returns the 4 KiB physical frame number.
func (p PA) Frame() uint64 { return uint64(p) >> PageBits }

// Line returns the physical cache line number.
func (p PA) Line() uint64 { return uint64(p) >> LineBits }

// PageOffset returns the offset within the 4 KiB frame.
func (p PA) PageOffset() uint64 { return uint64(p) & (PageSize - 1) }

// LineAligned returns the address rounded down to its cache line.
func (p PA) LineAligned() PA { return p &^ (LineSize - 1) }

// PageAligned returns the address rounded down to its 4 KiB frame.
func (p PA) PageAligned() PA { return p &^ (PageSize - 1) }

// FrameToPA converts a frame number back to a physical address.
func FrameToPA(frame uint64) PA { return PA(frame << PageBits) }

// PageToVA converts a virtual page number back to a virtual address.
func PageToVA(page uint64) VA { return VA(page << PageBits) }

// Perm is a 2-bit access permission carried in extended cache tags and
// translation entries (Figure 2 of the paper).
type Perm uint8

const (
	// PermNone denies all access.
	PermNone Perm = 0
	// PermRO allows reads only.
	PermRO Perm = 1
	// PermRW allows reads and writes.
	PermRW Perm = 2
	// PermExec allows instruction fetch (and reads).
	PermExec Perm = 3
)

// AllowsWrite reports whether the permission admits stores.
func (p Perm) AllowsWrite() bool { return p == PermRW }

// AllowsRead reports whether the permission admits loads.
func (p Perm) AllowsRead() bool { return p != PermNone }

func (p Perm) String() string {
	switch p {
	case PermNone:
		return "none"
	case PermRO:
		return "ro"
	case PermRW:
		return "rw"
	case PermExec:
		return "exec"
	}
	return fmt.Sprintf("perm(%d)", uint8(p))
}

// PayloadKind discriminates what a cache block holds. Data lines are the
// overwhelmingly common case and keep the zero value, so every existing
// name constructor and comparison is unchanged. Translation and
// synonym-record blocks let organizations park metadata in ordinary
// L2/LLC ways (Victima-style cached PTE blocks, reverse-lookup-table
// record blocks) under the same tag machinery as data.
type PayloadKind uint8

const (
	// PayloadData is an ordinary data line (the zero value).
	PayloadData PayloadKind = 0
	// PayloadTranslation is a cached translation block: the payload word
	// carries a packed PTE for the 4 KiB page named by Addr.
	PayloadTranslation PayloadKind = 1
	// PayloadSynRecord is a reverse-lookup synonym record block: the
	// payload word carries per-page synonym status for a page group.
	PayloadSynRecord PayloadKind = 2

	// payloadKindBits is the key-packing width; kinds must stay below
	// 1<<payloadKindBits.
	payloadKindBits = 2
)

func (k PayloadKind) String() string {
	switch k {
	case PayloadData:
		return "data"
	case PayloadTranslation:
		return "xlate"
	case PayloadSynRecord:
		return "synrec"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Name is the unique identity of a cache block in the hybrid hierarchy: a
// physical address for synonym blocks, or ASID+VA for non-synonym blocks.
// It corresponds to the extended cache tag of Figure 2 (synonym bit, 16-bit
// ASID, shared PA/VA tag field), extended with a payload-kind discriminator
// so the same set/way storage can hold typed metadata blocks.
type Name struct {
	// Addr holds a line-aligned PA (Synonym) or VA (non-synonym). It is
	// the first field so the compiler-generated equality used by cache
	// set scans rejects on the discriminating word first.
	Addr uint64
	// ASID qualifies virtual names to avoid homonyms.
	ASID ASID
	// Synonym is the tag's synonym bit: true means Addr holds a physical
	// address and ASID is ignored.
	Synonym bool
	// Kind discriminates the block payload; PayloadData (zero) for
	// ordinary lines, so only metadata blocks ever set it.
	Kind PayloadKind
}

// PhysName builds the name of a physically addressed (synonym) block.
func PhysName(pa PA) Name {
	return Name{Synonym: true, Addr: uint64(pa.LineAligned())}
}

// VirtName builds the name of a virtually addressed (non-synonym) block.
func VirtName(asid ASID, va VA) Name {
	return Name{ASID: asid, Addr: uint64(va.LineAligned())}
}

// PayloadName builds the name of a metadata block of the given kind. The
// block is addressed virtually (ASID + page-aligned VA), so flush-by-ASID
// and the checker's per-process audits treat it like any other
// non-synonym resident.
func PayloadName(kind PayloadKind, asid ASID, va VA) Name {
	return Name{Kind: kind, ASID: asid, Addr: uint64(va.LineAligned())}
}

// Key packs the whole name into one comparable word: Addr is line-aligned
// (low 6 bits clear) and canonical (< 2^48), leaving bit 0 for the synonym
// bit, bits 2..3 for the payload kind, and the top 16 bits for the ASID
// (bit 1 stays clear — the cache borrows it as its valid bit). Two names
// are equal iff their keys are equal, so tag scans compare a single word
// and data/metadata blocks can never alias.
func (n Name) Key() uint64 {
	k := n.Addr | uint64(n.ASID)<<VABits | uint64(n.Kind&(1<<payloadKindBits-1))<<2
	if n.Synonym {
		k |= 1
	}
	return k
}

// NameFromKey inverts Key: it rebuilds the Name a key value was packed
// from. The packing is bijective — Addr occupies the canonical low 48 bits
// (line-aligned, so bits 0..5 are clear), bit 0 carries the synonym flag,
// bits 2..3 the payload kind, and the ASID sits above — which is what lets
// the cache keep only packed keys and reconstruct victim and flush names
// on the slow paths.
func NameFromKey(k uint64) Name {
	return Name{
		Addr:    k &^ (LineSize - 1) & (1<<VABits - 1),
		ASID:    ASID(k >> VABits),
		Synonym: k&1 != 0,
		Kind:    PayloadKind(k >> 2 & (1<<payloadKindBits - 1)),
	}
}

// Line returns the line number used for cache set indexing.
func (n Name) Line() uint64 { return n.Addr >> LineBits }

// Page returns the 4 KiB page/frame number of the block.
func (n Name) Page() uint64 { return n.Addr >> PageBits }

// SamePage reports whether the name falls in the given page of the given
// address space kind: for synonym names the page is a physical frame, for
// non-synonym names it is (asid, virtual page). Payload kinds are part of
// the identity, so a data-page flush never sweeps up a metadata block that
// happens to be named by the same page.
func (n Name) SamePage(other Name) bool {
	return n.Synonym == other.Synonym && n.Kind == other.Kind &&
		n.ASID == other.ASID && n.Page() == other.Page()
}

func (n Name) String() string {
	prefix := ""
	if n.Kind != PayloadData {
		prefix = n.Kind.String() + ":"
	}
	if n.Synonym {
		return fmt.Sprintf("%sP:%#x", prefix, n.Addr)
	}
	return fmt.Sprintf("%sV:%s:%#x", prefix, n.ASID, n.Addr)
}
